// Package workload implements the synthetic IO and memory workloads the
// paper's experiments are built from: depth-based saturating readers and
// writers, latency-target load-shedding services (the online-service proxy
// of §4.2), think-time readers, rate-profile replayers, memory leakers and
// stress-style working-set touchers.
package workload

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/blk"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/rng"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/stats"
)

// Stats aggregates a workload's completions.
type Stats struct {
	Done    uint64
	Bytes   uint64
	Latency *stats.Histogram // submit-to-complete

	window stats.Counter
}

func newStats() *Stats {
	return &Stats{Latency: stats.NewHistogram()}
}

func (s *Stats) observe(b *bio.Bio) {
	s.Done++
	s.Bytes += uint64(b.Size)
	s.Latency.Observe(int64(b.Latency()))
	s.window.Inc(1)
}

// TakeWindow returns completions since the last call, for rate sampling.
func (s *Stats) TakeWindow() uint64 { return s.window.TakeWindow() }

// Pattern is an access pattern.
type Pattern uint8

const (
	// Random picks uniformly random aligned offsets in the region.
	Random Pattern = iota
	// Sequential advances linearly through the region, wrapping.
	Sequential
)

// region generates offsets for a workload. Every workload works within its
// own device region, as distinct files/partitions would.
type region struct {
	base, size int64
	next       int64
	rnd        *rng.Source
}

func (r *region) offset(p Pattern, ioSize int64) int64 {
	if p == Sequential {
		if r.next < r.base || r.next+ioSize > r.base+r.size {
			r.next = r.base
		}
		off := r.next
		r.next += ioSize
		return off
	}
	span := r.size - ioSize
	if span <= 0 {
		return r.base
	}
	return r.base + r.rnd.Int63n(span/ioSize)*ioSize
}

// Saturator keeps Depth requests in flight, the moral equivalent of fio
// with iodepth=Depth: as fast as the controller and device allow.
type Saturator struct {
	q   *blk.Queue
	cg  *cgroup.Node
	op  bio.Op
	pat Pattern
	sz  int64
	dep int
	reg region

	Stats   *Stats
	stopped bool
	// onDone is the completion callback, built once: with bios drawn from
	// the queue's pool, the steady-state issue loop allocates nothing.
	onDone func(*bio.Bio)
}

// SaturatorConfig configures a Saturator.
type SaturatorConfig struct {
	CG      *cgroup.Node
	Op      bio.Op
	Pattern Pattern
	Size    int64 // bytes per IO
	Depth   int   // requests kept in flight
	Region  int64 // device region base offset
	Span    int64 // device region length; 0 selects 16GiB
	Seed    uint64
}

// NewSaturator builds a saturator on q.
func NewSaturator(q *blk.Queue, cfg SaturatorConfig) *Saturator {
	if cfg.Size <= 0 {
		cfg.Size = 4096
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	if cfg.Span <= 0 {
		cfg.Span = 16 << 30
	}
	w := &Saturator{
		q: q, cg: cfg.CG, op: cfg.Op, pat: cfg.Pattern, sz: cfg.Size, dep: cfg.Depth,
		reg:   region{base: cfg.Region, size: cfg.Span, rnd: rng.Derive(cfg.Seed, 0x5a7)},
		Stats: newStats(),
	}
	w.onDone = func(b *bio.Bio) {
		w.Stats.observe(b)
		w.issue()
	}
	return w
}

// Start begins issuing.
func (w *Saturator) Start() {
	for i := 0; i < w.dep; i++ {
		w.issue()
	}
}

// Stop ceases issuing; in-flight requests drain naturally.
func (w *Saturator) Stop() { w.stopped = true }

func (w *Saturator) issue() {
	if w.stopped {
		return
	}
	b := w.q.BioPool().Get()
	b.Op = w.op
	b.Off = w.reg.offset(w.pat, w.sz)
	b.Size = w.sz
	b.CG = w.cg
	b.OnDone = w.onDone
	w.q.Submit(b)
}

// ThinkTime issues one request, waits Think after its completion, then
// issues the next — the high-priority workload of the work-conservation
// experiment (Figure 11).
type ThinkTime struct {
	q     *blk.Queue
	cg    *cgroup.Node
	op    bio.Op
	pat   Pattern
	sz    int64
	think sim.Time
	reg   region

	Stats   *Stats
	stopped bool
	// onDone/issueFn are built once so the issue → think → issue cycle
	// does not allocate closures.
	onDone  func(*bio.Bio)
	issueFn func()
}

// ThinkTimeConfig configures a ThinkTime workload.
type ThinkTimeConfig struct {
	CG      *cgroup.Node
	Op      bio.Op
	Pattern Pattern
	Size    int64
	Think   sim.Time
	Region  int64
	Span    int64
	Seed    uint64
}

// NewThinkTime builds a serial think-time workload.
func NewThinkTime(q *blk.Queue, cfg ThinkTimeConfig) *ThinkTime {
	if cfg.Size <= 0 {
		cfg.Size = 4096
	}
	if cfg.Span <= 0 {
		cfg.Span = 16 << 30
	}
	w := &ThinkTime{
		q: q, cg: cfg.CG, op: cfg.Op, pat: cfg.Pattern, sz: cfg.Size, think: cfg.Think,
		reg:   region{base: cfg.Region, size: cfg.Span, rnd: rng.Derive(cfg.Seed, 0x71417)},
		Stats: newStats(),
	}
	w.issueFn = w.issue
	w.onDone = func(b *bio.Bio) {
		w.Stats.observe(b)
		w.q.Engine().After(w.think, w.issueFn)
	}
	return w
}

// Start begins the issue loop.
func (w *ThinkTime) Start() { w.issue() }

// Stop ceases issuing.
func (w *ThinkTime) Stop() { w.stopped = true }

func (w *ThinkTime) issue() {
	if w.stopped {
		return
	}
	b := w.q.BioPool().Get()
	b.Op = w.op
	b.Off = w.reg.offset(w.pat, w.sz)
	b.Size = w.sz
	b.CG = w.cg
	b.OnDone = w.onDone
	w.q.Submit(b)
}
