// Package pidctl implements the small PID controller used to ramp
// ResourceControlBench load in the overcommit experiment (Figure 15).
package pidctl

// PID is a proportional-integral-derivative controller with output clamping
// and integral anti-windup. Construct with New.
type PID struct {
	kp, ki, kd float64
	setpoint   float64
	outMin     float64
	outMax     float64

	integral float64
	prevErr  float64
	primed   bool
}

// New returns a PID controller steering toward setpoint with output clamped
// to [outMin, outMax].
func New(kp, ki, kd, setpoint, outMin, outMax float64) *PID {
	if outMin > outMax {
		panic("pidctl: outMin > outMax")
	}
	return &PID{kp: kp, ki: ki, kd: kd, setpoint: setpoint, outMin: outMin, outMax: outMax}
}

// SetPoint changes the target.
func (p *PID) SetPoint(v float64) { p.setpoint = v }

// Update feeds a measurement taken dt seconds after the previous one and
// returns the new control output.
func (p *PID) Update(measured, dt float64) float64 {
	if dt <= 0 {
		dt = 1e-9
	}
	err := p.setpoint - measured
	var deriv float64
	if p.primed {
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.primed = true

	p.integral += err * dt
	out := p.kp*err + p.ki*p.integral + p.kd*deriv
	// Anti-windup: clamp the output and bleed the integral when pinned.
	if out > p.outMax {
		if p.ki != 0 {
			p.integral -= (out - p.outMax) / p.ki
		}
		out = p.outMax
	} else if out < p.outMin {
		if p.ki != 0 {
			p.integral += (p.outMin - out) / p.ki
		}
		out = p.outMin
	}
	return out
}

// Reset clears controller state.
func (p *PID) Reset() {
	p.integral, p.prevErr, p.primed = 0, 0, false
}
