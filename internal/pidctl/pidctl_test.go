package pidctl

import (
	"testing"
	"testing/quick"
)

func TestConvergesToSetpoint(t *testing.T) {
	// A trivial first-order plant: value moves toward the control output.
	pid := New(0.8, 0.4, 0.0, 10, -100, 100)
	value := 0.0
	for i := 0; i < 200; i++ {
		out := pid.Update(value, 0.1)
		value += 0.1 * (out - 0.2*value)
	}
	if value < 9 || value > 11 {
		t.Errorf("plant settled at %.2f, want ~10", value)
	}
}

func TestOutputClamping(t *testing.T) {
	pid := New(100, 0, 0, 0, -1, 1)
	if out := pid.Update(-1000, 1); out != 1 {
		t.Errorf("output %v, want clamped to 1", out)
	}
	if out := pid.Update(1000, 1); out != -1 {
		t.Errorf("output %v, want clamped to -1", out)
	}
}

func TestAntiWindup(t *testing.T) {
	// Saturate hard for a long time, then flip the error: without
	// anti-windup the integral would keep the output pinned for ages.
	pid := New(0.1, 0.5, 0, 0, -1, 1)
	for i := 0; i < 1000; i++ {
		pid.Update(-100, 0.1) // large positive error, output pinned at +1
	}
	flips := 0
	for i := 0; i < 5; i++ {
		if pid.Update(100, 0.1) < 0 {
			flips++
		}
	}
	if flips == 0 {
		t.Error("output never flipped after error reversal; integral wound up")
	}
}

func TestReset(t *testing.T) {
	pid := New(1, 1, 1, 0, -10, 10)
	pid.Update(5, 1)
	pid.Update(3, 1)
	pid.Reset()
	// After reset, a zero-error measurement yields zero output.
	if out := pid.Update(0, 1); out != 0 {
		t.Errorf("output after reset = %v, want 0", out)
	}
}

func TestOutputAlwaysWithinClamps(t *testing.T) {
	prop := func(meas []float64) bool {
		pid := New(2, 0.7, 0.3, 5, -2, 3)
		for _, m := range meas {
			out := pid.Update(m, 0.5)
			if out < -2 || out > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnInvertedClamps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with min>max did not panic")
		}
	}()
	New(1, 1, 1, 0, 5, -5)
}
