package flight

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"github.com/iocost-sim/iocost/internal/fault"
	"github.com/iocost-sim/iocost/internal/registry"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/slo"
	"github.com/iocost-sim/iocost/internal/span"
	"github.com/iocost-sim/iocost/internal/trace"
)

// BundleVersion is the incident-bundle schema version. Bump it whenever a
// field changes meaning; readers reject versions they don't know.
const BundleVersion = 1

// RegSample is one flattened registry sample in the bundle.
type RegSample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Bundle is one incident: the last-window trace, a registry scrape, the
// span blame report and the SLO alert history, all frozen at trigger time.
// It is a self-contained JSON document — everything a post-mortem needs to
// replay and render the incident without the run that produced it.
type Bundle struct {
	Version int    `json:"version"`
	Reason  string `json:"reason"`
	// AtNS is the virtual-time trigger instant; WindowNS how far back the
	// trace snapshot reaches.
	AtNS     int64             `json:"at_ns"`
	WindowNS int64             `json:"window_ns"`
	Meta     map[string]string `json:"meta,omitempty"`

	// Events counts trace events in the snapshot; DroppedBefore how many
	// the ring had already shed before the window (context for gaps).
	Events        int    `json:"events"`
	DroppedBefore uint64 `json:"dropped_before"`
	// TraceB64 is the base64 of the window trace in the versioned binary
	// format — `iocost-trace analyze` and `export-perfetto` accept it.
	TraceB64 string `json:"trace_b64"`

	// Plan is the fault plan in force (episode attribution context).
	Plan string `json:"plan,omitempty"`

	Registry []RegSample  `json:"registry,omitempty"`
	Blame    *span.Report `json:"blame,omitempty"`
	Alerts   []slo.Alert  `json:"alerts,omitempty"`
}

// windowTrace copies the events of t with At >= cut (controller tables are
// shared; the snapshot is read-only).
func windowTrace(t *trace.Trace, cut sim.Time) *trace.Trace {
	w := &trace.Trace{CGroups: t.CGroups, Dropped: t.Dropped}
	for i := range t.Events {
		if t.Events[i].At >= cut {
			w.Events = append(w.Events, t.Events[i])
		}
	}
	return w
}

// BundleFromTrace freezes an incident bundle from an existing capture —
// the path simfuzz uses to bundle failing seeds without a live recorder.
// window 0 keeps the whole trace.
func BundleFromTrace(t *trace.Trace, reason string, at sim.Time, window sim.Time,
	plan fault.Plan, meta map[string]string) *Bundle {
	w := t
	if window > 0 {
		cut := at - window
		if cut > 0 {
			w = windowTrace(t, cut)
		}
	}
	b := &Bundle{
		Version:       BundleVersion,
		Reason:        reason,
		AtNS:          int64(at),
		WindowNS:      int64(window),
		Meta:          meta,
		Events:        len(w.Events),
		DroppedBefore: t.Dropped,
		TraceB64:      base64.StdEncoding.EncodeToString(trace.Encode(w)),
	}
	if !plan.Empty() {
		b.Plan = plan.String()
	}
	if len(w.Events) > 0 {
		b.Blame = span.Build(w, plan).Blame()
	}
	return b
}

// scrape flattens a registry into bundle samples (registration order, so
// the output is deterministic).
func scrape(reg *registry.Registry) []RegSample {
	if reg == nil {
		return nil
	}
	var out []RegSample
	for _, fam := range reg.Gather() {
		for _, s := range fam.Samples {
			out = append(out, RegSample{Name: s.Name, Labels: s.Labels, Value: s.Value})
		}
	}
	return out
}

// Trace decodes the embedded window trace.
func (b *Bundle) Trace() (*trace.Trace, error) {
	raw, err := base64.StdEncoding.DecodeString(b.TraceB64)
	if err != nil {
		return nil, fmt.Errorf("flight: bundle trace is not base64: %w", err)
	}
	return trace.Decode(raw)
}

// Validate checks the bundle's schema: version, required fields, a
// decodable embedded trace whose event count matches, and well-formed
// blame fractions.
func (b *Bundle) Validate() error {
	if b.Version != BundleVersion {
		return fmt.Errorf("flight: bundle version %d, support %d", b.Version, BundleVersion)
	}
	if b.Reason == "" {
		return fmt.Errorf("flight: bundle has no trigger reason")
	}
	if b.AtNS < 0 || b.WindowNS < 0 || b.Events < 0 {
		return fmt.Errorf("flight: bundle has negative counts")
	}
	t, err := b.Trace()
	if err != nil {
		return err
	}
	if len(t.Events) != b.Events {
		return fmt.Errorf("flight: bundle says %d events, trace holds %d", b.Events, len(t.Events))
	}
	if b.Blame != nil {
		if err := b.Blame.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Encode renders the bundle as deterministic JSON (struct field order;
// map keys sorted by encoding/json).
func (b *Bundle) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile writes the bundle to path.
func (b *Bundle) WriteFile(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadBundle loads and validates a bundle file.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeBundle(data)
}

// DecodeBundle parses and validates bundle JSON.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: malformed bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
