package flight_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/core"
	"github.com/iocost-sim/iocost/internal/device"
	"github.com/iocost-sim/iocost/internal/exp"
	"github.com/iocost-sim/iocost/internal/fault"
	"github.com/iocost-sim/iocost/internal/flight"
	"github.com/iocost-sim/iocost/internal/registry"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/slo"
	"github.com/iocost-sim/iocost/internal/trace"
	"github.com/iocost-sim/iocost/internal/tune"
	"github.com/iocost-sim/iocost/internal/workload"
)

// stormPlan is a compressed aging-SSD storm for sub-second test runs.
func stormPlan() fault.Plan {
	return fault.Plan{Episodes: []fault.Episode{
		{Kind: fault.Slow, At: 200 * sim.Millisecond, Dur: 300 * sim.Millisecond, Factor: 10},
		{Kind: fault.Error, At: 200 * sim.Millisecond, Dur: 300 * sim.Millisecond, Rate: 0.01},
	}}
}

// newStormMachine builds the contention scenario with a flight recorder and
// an injected storm.
func newStormMachine(t *testing.T, fc flight.Config, plan fault.Plan) *exp.Machine {
	t.Helper()
	spec := device.OlderGenSSD()
	m := exp.MustNewMachine(exp.MachineConfig{
		Device:     exp.DeviceChoice{SSD: &spec},
		Controller: exp.KindIOCost,
		Seed:       1,
		Faults:     plan,
		Flight:     &fc,
	})
	hi := m.Workload.NewChild("hi", 200)
	lo := m.Workload.NewChild("lo", 100)
	workload.NewSaturator(m.Q, workload.SaturatorConfig{
		CG: hi, Op: bio.Read, Pattern: workload.Random,
		Size: 4096, Depth: 16, Region: 0, Seed: 2,
	}).Start()
	workload.NewSaturator(m.Q, workload.SaturatorConfig{
		CG: lo, Op: bio.Read, Pattern: workload.Random,
		Size: 4096, Depth: 16, Region: 1 << 40, Seed: 3,
	}).Start()
	return m
}

// TestStormAutoBundle pins the acceptance criterion end to end: a machine
// under an injected storm auto-captures an incident bundle at storm onset,
// and the bundle's span blame attributes the tail to the episodes.
func TestStormAutoBundle(t *testing.T) {
	m := newStormMachine(t, flight.Config{
		Window:     sim.Second,
		CheckEvery: 50 * sim.Millisecond,
	}, stormPlan())
	m.Run(600 * sim.Millisecond)

	inc := m.Flight.Incidents()
	if len(inc) == 0 {
		t.Fatal("storm run captured no incidents")
	}
	b := inc[0]
	if !strings.HasPrefix(b.Reason, "fault-storm-start:") {
		t.Fatalf("first incident reason %q, want fault-storm-start:*", b.Reason)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Blame == nil || b.Blame.Spans == 0 {
		t.Fatal("bundle carries no span blame")
	}
	if len(b.Registry) == 0 {
		t.Fatal("bundle carries no registry scrape")
	}
	if b.Meta["seed"] != "1" || b.Meta["controller"] != "iocost" {
		t.Fatalf("bundle meta %v, want machine-derived seed/controller", b.Meta)
	}
	// A second trigger can also capture mid-storm attribution; the onset
	// bundle captures the lead-in, so fault attribution may still be tiny
	// there. Check the machine-wide picture instead: rebuild blame over
	// the full ring at end of run.
	full := flight.BundleFromTrace(m.Flight.TraceRecorder().Trace(), "end-of-run",
		m.Eng.Now(), 0, stormPlan(), nil)
	if full.Blame.System.FaultFrac <= 0 {
		t.Fatalf("no fault attribution in end-of-run blame: %+v", full.Blame.System)
	}
}

// TestStormBundleDeterministic pins that two identical storm runs produce
// byte-identical incident bundles — the property `make incident-smoke`
// checks via the CLI.
func TestStormBundleDeterministic(t *testing.T) {
	run := func() []byte {
		m := newStormMachine(t, flight.Config{
			Window:     sim.Second,
			CheckEvery: 50 * sim.Millisecond,
		}, stormPlan())
		m.Run(600 * sim.Millisecond)
		inc := m.Flight.Incidents()
		if len(inc) == 0 {
			t.Fatal("no incidents")
		}
		data, err := inc[0].Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different bundles")
	}
}

// traceBytes runs the contention scenario with an explicit main trace and
// optionally a flight recorder, returning the main trace's encoded bytes.
func traceBytes(t *testing.T, fc *flight.Config, disable bool) []byte {
	t.Helper()
	spec := device.OlderGenSSD()
	m := exp.MustNewMachine(exp.MachineConfig{
		Device:     exp.DeviceChoice{SSD: &spec},
		Controller: exp.KindIOCost,
		Seed:       1,
		Trace:      true,
		Flight:     fc,
	})
	w := m.Workload.NewChild("w", 300)
	workload.NewSaturator(m.Q, workload.SaturatorConfig{
		CG: w, Op: bio.Read, Pattern: workload.Random,
		Size: 4096, Depth: 16, Region: 0, Seed: 2,
	}).Start()
	if disable && m.Flight != nil {
		m.Flight.SetEnabled(false)
	}
	m.Run(200 * sim.Millisecond)
	return trace.Encode(m.Trace.Trace())
}

// TestStreamSeparation pins the PR 5/7 convention for observability
// streams: enabling (or disabling) the flight recorder never changes the
// main trace — and a disabled recorder is byte-identical to no recorder.
func TestStreamSeparation(t *testing.T) {
	bare := traceBytes(t, nil, false)
	enabled := traceBytes(t, &flight.Config{CheckEvery: 50 * sim.Millisecond}, false)
	disabled := traceBytes(t, &flight.Config{CheckEvery: 50 * sim.Millisecond}, true)
	if !bytes.Equal(bare, enabled) {
		t.Fatal("enabling the flight recorder changed the main trace")
	}
	if !bytes.Equal(bare, disabled) {
		t.Fatal("a disabled flight recorder is not byte-identical to no recorder")
	}
}

// rig is a hand-driven registry for trigger tests (same shape as the tune
// daemon's test rig — the two subsystems share trigger semantics).
type rig struct {
	eng    *sim.Engine
	reg    *registry.Registry
	vrate  float64
	press  float64
	faults float64
}

func newRig() *rig {
	r := &rig{eng: sim.New(), reg: registry.New(), vrate: 1}
	r.reg.GaugeFunc("iocost_vrate", "test", nil, func() float64 { return r.vrate })
	r.reg.Collector("io_pressure_full_avg10", registry.Gauge, "test",
		func(emit func([]registry.Label, float64)) {
			emit(registry.L("scope", "system"), r.press)
		})
	r.reg.CounterFunc("fault_errors_total", "test", registry.L("device", "dev0"),
		func() float64 { return r.faults })
	return r
}

func newRigRecorder(t *testing.T, r *rig, cfg flight.Config) *flight.Recorder {
	t.Helper()
	fl, err := flight.New(r.eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.BindRegistry(r.reg); err != nil {
		t.Fatal(err)
	}
	if err := fl.Start(); err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestTriggerHysteresis pins flight triggers onto the shared tune
// semantics: consecutive-breach arming, cooldown, and priority order.
func TestTriggerHysteresis(t *testing.T) {
	r := newRig()
	fl := newRigRecorder(t, r, flight.Config{
		CheckEvery: sim.Second, Consec: 2, Cooldown: 5 * sim.Second,
		VrateFloor: 0.3, PressureCeil: 50,
	})

	// Healthy: no incidents.
	r.eng.RunUntil(3*sim.Second + sim.Second/2)
	if n := len(fl.Incidents()); n != 0 {
		t.Fatalf("healthy machine captured %d incidents", n)
	}

	// Vrate collapse: breaches at t=4s and 5s, snapshot at the second.
	r.vrate = 0.25
	r.eng.RunUntil(5*sim.Second + sim.Second/2)
	inc := fl.Incidents()
	if len(inc) != 1 || inc[0].Reason != "vrate-collapse" {
		t.Fatalf("after collapse: %d incidents, first %v", len(inc), inc)
	}

	// Still collapsed inside the cooldown: no second snapshot.
	r.eng.RunUntil(7*sim.Second + sim.Second/2)
	if n := len(fl.Incidents()); n != 1 {
		t.Fatalf("cooldown not honored: %d incidents", n)
	}

	// Recovered vrate, pressure spike: snapshot after cooldown expiry,
	// priority names the pressure trigger.
	r.vrate = 1
	r.press = 80
	r.eng.RunUntil(12*sim.Second + sim.Second/2)
	inc = fl.Incidents()
	if len(inc) != 2 || inc[1].Reason != "pressure-spike" {
		t.Fatalf("after spike: %d incidents, reasons %s/%s",
			len(inc), inc[0].Reason, inc[len(inc)-1].Reason)
	}
}

// TestMaxIncidents pins the memory bound: snapshots beyond the cap are
// counted but dropped.
func TestMaxIncidents(t *testing.T) {
	r := newRig()
	fl := newRigRecorder(t, r, flight.Config{
		CheckEvery: sim.Second, MaxIncidents: 2,
	})
	for i := 0; i < 5; i++ {
		fl.Trigger("manual")
	}
	if n := len(fl.Incidents()); n != 2 {
		t.Fatalf("kept %d incidents, want 2", n)
	}
	if fl.Triggered != 5 || fl.DroppedIncidents != 3 {
		t.Fatalf("triggered=%d dropped=%d, want 5/3", fl.Triggered, fl.DroppedIncidents)
	}
	// Disabled recorder triggers nothing.
	fl.SetEnabled(false)
	if b := fl.Trigger("manual"); b != nil {
		t.Fatal("disabled recorder produced a bundle")
	}
}

// TestSLOTrigger pins the slo-burn trigger: a registry whose error counters
// burn the budget snapshots with reason slo-burn.
func TestSLOTrigger(t *testing.T) {
	r := newRig()
	var completions, errors float64
	r.reg.CounterFunc("blk_completions_total", "test", nil, func() float64 { return completions })
	r.reg.CounterFunc("blk_errors_total", "test", nil, func() float64 { return errors })
	r.reg.CounterFunc("blk_timeouts_total", "test", nil, func() float64 { return 0 })
	fl := newRigRecorder(t, r, flight.Config{
		CheckEvery: 250 * sim.Millisecond, Consec: 2,
		Rules: []slo.Rule{{
			Name: "page", Target: 0.99, Short: sim.Second, Long: 2 * sim.Second, Burn: 5,
		}},
	})
	outage := false
	r.eng.NewTicker(250*sim.Millisecond, func() {
		completions += 100
		if outage {
			errors += 50
		}
	})
	r.eng.RunUntil(2 * sim.Second)
	if len(fl.Incidents()) != 0 {
		t.Fatal("healthy run captured incidents")
	}
	outage = true
	r.eng.RunUntil(6 * sim.Second)
	inc := fl.Incidents()
	if len(inc) == 0 || inc[0].Reason != "slo-burn" {
		t.Fatalf("no slo-burn incident: %d captured", len(inc))
	}
	if len(inc[0].Alerts) == 0 {
		t.Fatal("slo-burn bundle carries no alert history")
	}
}

// TestBundleFiles pins on-disk capture: bundles land in Dir with sanitized
// names and survive a read-validate round trip.
func TestBundleFiles(t *testing.T) {
	dir := t.TempDir()
	r := newRig()
	fl := newRigRecorder(t, r, flight.Config{Dir: dir})
	fl.Trigger("fault-storm-start:slow")
	files, err := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, files %v", err, files)
	}
	want := filepath.Join(dir, "incident-000-fault-storm-start-slow.json")
	if files[0] != want {
		t.Fatalf("incident file %q, want %q", files[0], want)
	}
	b, err := flight.ReadBundle(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "fault-storm-start:slow" {
		t.Fatalf("round-tripped reason %q", b.Reason)
	}
}

// TestBundleValidation pins schema rejection: wrong version, corrupt trace
// payload, malformed JSON.
func TestBundleValidation(t *testing.T) {
	r := newRig()
	fl := newRigRecorder(t, r, flight.Config{})
	b := fl.Trigger("manual")
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flight.DecodeBundle(data); err != nil {
		t.Fatal(err)
	}
	if _, err := flight.DecodeBundle([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	bad := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := flight.DecodeBundle([]byte(bad)); err == nil {
		t.Fatal("future version accepted")
	}
	bad = strings.Replace(string(data), `"trace_b64": "`, `"trace_b64": "!!!`, 1)
	if _, err := flight.DecodeBundle([]byte(bad)); err == nil {
		t.Fatal("corrupt trace payload accepted")
	}
	bad = strings.Replace(string(data), `"reason": "manual"`, `"reason": ""`, 1)
	if _, err := flight.DecodeBundle([]byte(bad)); err == nil {
		t.Fatal("empty reason accepted")
	}
}

// TestConfigValidate pins config rejection.
func TestConfigValidate(t *testing.T) {
	for _, bad := range []flight.Config{
		{Cap: -1},
		{Window: -1},
		{CheckEvery: -1},
		{Cooldown: -1},
		{Consec: -1},
		{MaxIncidents: -1},
		{VrateFloor: -1},
		{PressureCeil: -1},
		{FaultCeil: -1},
		{Rules: []slo.Rule{{Name: ""}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v validated", bad)
		}
	}
	// Metric triggers without a registry refuse to start.
	fl, err := flight.New(sim.New(), flight.Config{VrateFloor: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Start(); err == nil {
		t.Fatal("started with triggers but no registry")
	}
}

// TestDaemonNotifyTrigger wires a tune daemon's re-tune notification into
// the flight recorder: every accepted re-tune snapshots the machine state
// that led to it, tagged retune:<trigger>.
func TestDaemonNotifyTrigger(t *testing.T) {
	m := newStormMachine(t, flight.Config{
		Window:     sim.Second,
		CheckEvery: 50 * sim.Millisecond,
	}, stormPlan())
	d, err := tune.NewDaemon(m.Eng, m.Registry, tune.Policy{
		CheckEvery: 50 * sim.Millisecond,
		Cooldown:   sim.Second,
		Consec:     1,
		FaultCeil:  1, // the storm's error episode breaches this
	}, func(trigger string) (core.QoS, bool) {
		return core.DefaultQoS(), true
	}, func(core.QoS) {}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.SetNotify(func(trigger string) { m.Flight.Trigger("retune:" + trigger) })
	d.Start()

	m.Run(600 * sim.Millisecond)
	if d.Retunes == 0 {
		t.Fatal("daemon never re-tuned under the storm")
	}
	// The recorder also files its own fault-storm-start bundles (the plan
	// rides in from MachineConfig.Faults); count just the notify-driven ones.
	var retunes []*flight.Bundle
	for _, b := range m.Flight.Incidents() {
		if strings.HasPrefix(b.Reason, "retune:") {
			retunes = append(retunes, b)
		}
	}
	if len(retunes) != d.Retunes {
		t.Fatalf("%d retune incidents for %d re-tunes", len(retunes), d.Retunes)
	}
	if err := retunes[0].Validate(); err != nil {
		t.Fatal(err)
	}
}
