// Package flight is the always-on black box: a bounded-memory telemetry
// ring that every machine can afford to keep running, plus a trigger state
// machine that freezes the last N seconds into a versioned incident bundle
// the moment something goes wrong — SLO burn, vrate collapse, PSI spike,
// fault-storm onset, or an explicit caller trigger (sanitizer failure,
// tune-daemon re-tune).
//
// The recorder rides entirely on existing capture paths: the ring is an
// internal/trace Recorder (read-only blk observer + controller event sink),
// triggers read the registry through the alloc-free typed accessors, and
// SLO rules evaluate on the virtual clock. Steady-state cost is therefore
// the trace ring's — no allocations, no schedule perturbation — and the
// whole-stack zero-alloc pin covers a flight-enabled machine.
//
// Trigger arming shares tune.Hysteresis with the auto-tune daemon:
// consecutive-breach counts, cooldown windows and lifetime caps behave
// identically in both subsystems, pinned by both packages' tests.
package flight

import (
	"fmt"
	"strings"

	"github.com/iocost-sim/iocost/internal/blk"
	"github.com/iocost-sim/iocost/internal/fault"
	"github.com/iocost-sim/iocost/internal/registry"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/slo"
	"github.com/iocost-sim/iocost/internal/trace"
	"github.com/iocost-sim/iocost/internal/tune"
)

// Defaults.
const (
	// DefaultCap bounds the black-box ring (events); at ~40 bytes each
	// that is a few MB per machine.
	DefaultCap = 1 << 17
	// DefaultWindow is how far back a snapshot reaches.
	DefaultWindow = 10 * sim.Second
	// DefaultCheckEvery is the trigger evaluation period.
	DefaultCheckEvery = 250 * sim.Millisecond
	// DefaultCooldown spaces automatic snapshots.
	DefaultCooldown = 5 * sim.Second
	// DefaultConsec arms metric triggers after this many consecutive
	// breached checks.
	DefaultConsec = 2
	// DefaultMaxIncidents bounds retained bundles per run.
	DefaultMaxIncidents = 8
)

// Config configures a flight recorder. The zero value is a valid always-on
// recorder with no automatic triggers (manual Trigger only).
type Config struct {
	// Cap bounds the trace ring in events (0 selects DefaultCap).
	Cap int
	// Window is the snapshot look-back (0 selects DefaultWindow).
	Window sim.Time
	// CheckEvery is the trigger evaluation period (0 selects
	// DefaultCheckEvery).
	CheckEvery sim.Time
	// Consec and Cooldown are the shared hysteresis parameters (0 selects
	// DefaultConsec / DefaultCooldown).
	Consec   int
	Cooldown sim.Time
	// MaxIncidents bounds bundles captured per run (0 selects
	// DefaultMaxIncidents).
	MaxIncidents int

	// Metric triggers, evaluated against the bound registry; 0 disables
	// each. Thresholds have tune.Policy semantics.
	VrateFloor   float64
	PressureCeil float64
	FaultCeil    float64

	// Rules, when non-empty, adds an SLO burn-rate trigger (any rule
	// firing counts as a breach).
	Rules []slo.Rule

	// Plan, when non-empty, adds a fault-storm-start trigger: the first
	// check inside each episode snapshots immediately (no consecutive-
	// breach requirement — the onset IS the incident), subject to cooldown
	// and MaxIncidents. The plan also drives span blame attribution.
	Plan fault.Plan

	// Dir, when set, writes each bundle to
	// Dir/incident-NNN-<reason>.json as it is captured.
	Dir string
	// Meta is carried verbatim into every bundle (seed, scenario, host).
	Meta map[string]string
}

func (c Config) withDefaults() Config {
	if c.Cap == 0 {
		c.Cap = DefaultCap
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = DefaultCheckEvery
	}
	if c.Consec == 0 {
		c.Consec = DefaultConsec
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.MaxIncidents == 0 {
		c.MaxIncidents = DefaultMaxIncidents
	}
	return c
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if c.Cap < 0 || c.Consec < 0 || c.MaxIncidents < 0 {
		return fmt.Errorf("flight: config counts must be non-negative")
	}
	if c.Window < 0 || c.CheckEvery < 0 || c.Cooldown < 0 {
		return fmt.Errorf("flight: config periods must be non-negative")
	}
	if c.VrateFloor < 0 || c.PressureCeil < 0 || c.FaultCeil < 0 {
		return fmt.Errorf("flight: config thresholds must be non-negative")
	}
	for _, r := range c.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	if err := c.Plan.Validate(); err != nil {
		return err
	}
	return nil
}

// scopeSystem matches the PSI collector's system-scope series.
var scopeSystem = registry.L("scope", "system")

// Recorder is a live flight recorder on one machine.
type Recorder struct {
	eng *sim.Engine
	cfg Config
	rec *trace.Recorder
	reg *registry.Registry
	ev  *slo.Evaluator

	hyst    tune.Hysteresis
	epFired []bool

	lastFaults float64
	haveFaults bool
	enabled    bool

	incidents []*Bundle
	// Checks counts trigger evaluations; Triggered counts snapshots
	// (including ones beyond MaxIncidents whose bundles were dropped);
	// DroppedIncidents counts those drops.
	Checks           int
	Triggered        int
	DroppedIncidents int
}

// New builds a recorder on a machine's engine. It starts enabled; Attach,
// BindRegistry and Start wire and arm it.
func New(eng *sim.Engine, cfg Config) (*Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Recorder{
		eng:     eng,
		cfg:     cfg,
		rec:     trace.NewRecorder(eng, cfg.Cap),
		epFired: make([]bool, len(cfg.Plan.Episodes)),
		enabled: true,
	}
	r.hyst = tune.Hysteresis{Consec: cfg.Consec, Cooldown: cfg.Cooldown}
	return r, nil
}

// Attach subscribes the black-box ring to a block queue.
func (r *Recorder) Attach(q *blk.Queue) { r.rec.Attach(q) }

// TraceRecorder exposes the internal ring — it is the core.EventSink to
// install (or tee) on the controller so snapshots carry vrate/debt/donation
// context.
func (r *Recorder) TraceRecorder() *trace.Recorder { return r.rec }

// BindRegistry connects the metric triggers and SLO rules to a machine
// registry. Must be called before Start when any metric trigger or rule is
// configured.
func (r *Recorder) BindRegistry(reg *registry.Registry) error {
	r.reg = reg
	if len(r.cfg.Rules) > 0 {
		ev, err := slo.NewEvaluator(r.eng, slo.RegistrySource{Reg: reg}, r.cfg.Rules, r.cfg.CheckEvery)
		if err != nil {
			return err
		}
		r.ev = ev
	}
	return nil
}

// Evaluator returns the SLO evaluator (nil when no rules are configured).
func (r *Recorder) Evaluator() *slo.Evaluator { return r.ev }

// Start begins trigger checks on the engine's clock.
func (r *Recorder) Start() error {
	if r.reg == nil && (r.cfg.VrateFloor > 0 || r.cfg.PressureCeil > 0 ||
		r.cfg.FaultCeil > 0 || len(r.cfg.Rules) > 0) {
		return fmt.Errorf("flight: metric triggers configured but no registry bound")
	}
	r.eng.NewTicker(r.cfg.CheckEvery, r.check)
	return nil
}

// SetEnabled pauses or resumes the recorder: both capture and triggers.
// A disabled recorder does no work and captures nothing — byte-identical
// to a machine without one.
func (r *Recorder) SetEnabled(on bool) {
	r.enabled = on
	r.rec.SetEnabled(on)
}

// Enabled reports whether the recorder is live.
func (r *Recorder) Enabled() bool { return r.enabled }

// Incidents returns the captured bundles in trigger order.
func (r *Recorder) Incidents() []*Bundle { return r.incidents }

// trigger names the breached metric trigger, or "". Priority order is
// fixed (vrate, pressure, faults, slo) so a check breaching several
// reports deterministically — the same convention as tune.Daemon.
func (r *Recorder) trigger() string {
	if r.cfg.VrateFloor > 0 {
		if v, ok := r.reg.GaugeValue("iocost_vrate", nil); ok && v <= r.cfg.VrateFloor {
			return "vrate-collapse"
		}
	}
	if r.cfg.PressureCeil > 0 {
		if p, ok := r.reg.GaugeValue("io_pressure_full_avg10", scopeSystem); ok && p >= r.cfg.PressureCeil {
			return "pressure-spike"
		}
	}
	if r.cfg.FaultCeil > 0 {
		if f, ok := r.reg.Sum("fault_errors_total"); ok {
			prev, had := r.lastFaults, r.haveFaults
			r.lastFaults, r.haveFaults = f, true
			if had {
				rate := (f - prev) / r.cfg.CheckEvery.Seconds()
				if rate >= r.cfg.FaultCeil {
					return "fault-storm"
				}
			}
		}
	}
	if r.ev != nil && r.ev.AnyActive() {
		return "slo-burn"
	}
	return ""
}

// check is the ticker body: evaluate SLO rules, then episode-onset
// triggers, then hysteresis-armed metric triggers. Steady-state healthy
// checks allocate nothing.
func (r *Recorder) check() {
	if !r.enabled {
		return
	}
	r.Checks++
	now := r.eng.Now()
	if r.ev != nil {
		r.ev.Check()
	}

	// Fault-storm onset: the first check inside an episode snapshots
	// immediately — by the time a breach streak built up, the interesting
	// lead-in would have aged out of the window.
	for i := range r.cfg.Plan.Episodes {
		ep := &r.cfg.Plan.Episodes[i]
		if r.epFired[i] || now < ep.At || now >= ep.End() {
			continue
		}
		if fired, _ := r.hyst.LastFire(); r.hyst.Fires() > 0 && now-fired < r.cfg.Cooldown {
			continue // retry next check; epFired stays false
		}
		r.snapshot("fault-storm-start:" + ep.Kind.String())
		r.hyst.Fire(now)
		r.epFired[i] = true
	}

	var trig string
	if r.reg != nil {
		trig = r.trigger()
	}
	if !r.hyst.Observe(now, trig != "") {
		return
	}
	r.snapshot(trig)
	r.hyst.Fire(now)
}

// Trigger fires a manual snapshot (sanitizer failure, tune-daemon notify,
// operator request): no hysteresis, no cooldown, but MaxIncidents still
// bounds memory. Returns the bundle (nil when disabled or over the cap).
func (r *Recorder) Trigger(reason string) *Bundle {
	if !r.enabled {
		return nil
	}
	return r.snapshot(reason)
}

// snapshot freezes the window into a bundle.
func (r *Recorder) snapshot(reason string) *Bundle {
	r.Triggered++
	if len(r.incidents) >= r.cfg.MaxIncidents {
		r.DroppedIncidents++
		return nil
	}
	now := r.eng.Now()
	b := BundleFromTrace(r.rec.Trace(), reason, now, r.cfg.Window, r.cfg.Plan, r.cfg.Meta)
	b.Registry = scrape(r.reg)
	if r.ev != nil {
		b.Alerts = r.ev.Alerts()
	}
	r.incidents = append(r.incidents, b)
	if r.cfg.Dir != "" {
		path := fmt.Sprintf("%s/incident-%03d-%s.json", r.cfg.Dir, len(r.incidents)-1, sanitize(reason))
		if err := b.WriteFile(path); err != nil {
			// Capture must never take the run down; the bundle stays
			// available in memory.
			fmt.Printf("flight: writing %s: %v\n", path, err)
		}
	}
	return b
}

// sanitize maps a trigger reason to a filename-safe slug.
func sanitize(reason string) string {
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}
