// Package slo evaluates multi-window burn-rate alert rules over the live
// metrics registry — the Google-SRE alerting pattern (a fast window to
// catch cliffs quickly, a slow window to suppress blips) transplanted onto
// the simulator's virtual clock. Nothing here reads a wall clock: rules are
// evaluated on engine ticks against counter snapshots kept in a
// pre-allocated ring, so an evaluator is deterministic, replayable, and
// allocation-free in the steady state (alert history is only appended on
// state transitions).
//
// The error budget is defined over bio completions: a "bad event" is an
// error or timeout completion, and a rule burns at rate
//
//	burn = badFrac / (1 - target)
//
// so burn 1.0 consumes exactly the budget over the SLO period, and the
// classic fast-burn threshold (e.g. 14.4) catches outages in minutes.
package slo

import (
	"fmt"
	"strings"

	"github.com/iocost-sim/iocost/internal/registry"
	"github.com/iocost-sim/iocost/internal/sim"
)

// Rule is one multi-window burn-rate alert.
type Rule struct {
	// Name identifies the alert in output and bundles.
	Name string
	// Target is the availability objective (0 < Target < 1), e.g. 0.999.
	Target float64
	// Short and Long are the two look-back windows; the alert fires only
	// when BOTH windows burn at or above Burn (short = still happening,
	// long = significant).
	Short sim.Time
	Long  sim.Time
	// Burn is the burn-rate threshold (> 0).
	Burn float64
}

// Validate rejects malformed rules.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("slo: rule needs a name")
	}
	if r.Target <= 0 || r.Target >= 1 {
		return fmt.Errorf("slo: rule %q target %v outside (0,1)", r.Name, r.Target)
	}
	if r.Short <= 0 || r.Long <= 0 || r.Long < r.Short {
		return fmt.Errorf("slo: rule %q windows short=%v long=%v (need 0 < short <= long)",
			r.Name, r.Short, r.Long)
	}
	if r.Burn <= 0 {
		return fmt.Errorf("slo: rule %q burn threshold %v must be positive", r.Name, r.Burn)
	}
	return nil
}

// DefaultRules returns the standard pair sized for interactive simulation
// horizons (seconds, not the SRE book's hours): a fast-burn page and a
// slow-burn ticket.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "fast-burn", Target: 0.999, Short: 2 * sim.Second, Long: 10 * sim.Second, Burn: 14.4},
		{Name: "slow-burn", Target: 0.999, Short: 10 * sim.Second, Long: 60 * sim.Second, Burn: 3},
	}
}

// Source supplies cumulative event counts. Counts must be monotonically
// non-decreasing; the evaluator differences snapshots itself.
type Source interface {
	// Counts returns (bad, total) cumulative event counts.
	Counts() (bad, total float64)
}

// RegistrySource reads bad/total from a machine registry: errors plus
// timeouts over completions, via the alloc-free typed accessors.
type RegistrySource struct{ Reg *registry.Registry }

// Counts implements Source.
func (s RegistrySource) Counts() (bad, total float64) {
	e, _ := s.Reg.Sum("blk_errors_total")
	to, _ := s.Reg.Sum("blk_timeouts_total")
	c, _ := s.Reg.Sum("blk_completions_total")
	return e + to, c
}

// sample is one counter snapshot on the virtual clock.
type sample struct {
	at         sim.Time
	bad, total float64
}

// Alert records one rule state transition.
type Alert struct {
	Rule string `json:"rule"`
	// At is when the transition happened; Active is the new state.
	At     sim.Time `json:"at_ns"`
	Active bool     `json:"active"`
	// ShortBurn/LongBurn are the burn rates at the transition.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// maxAlertHistory bounds the retained transition log; Transitions keeps
// counting past it.
const maxAlertHistory = 64

// DefaultInterval is the evaluation period when none is configured.
const DefaultInterval = 250 * sim.Millisecond

// Evaluator runs burn-rate rules over a Source on the virtual clock.
type Evaluator struct {
	eng      *sim.Engine
	src      Source
	rules    []Rule
	interval sim.Time

	ring []sample // pre-allocated snapshot ring
	head int      // next write position
	n    int      // live samples

	active []bool
	burns  []float64 // scratch: short/long burn per rule, 2 per rule

	alerts      []Alert
	transitions int
}

// NewEvaluator builds an evaluator; interval 0 selects DefaultInterval.
// The ring is sized to cover the longest rule window.
func NewEvaluator(eng *sim.Engine, src Source, rules []Rule, interval sim.Time) (*Evaluator, error) {
	if src == nil {
		return nil, fmt.Errorf("slo: evaluator needs a source")
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("slo: evaluator needs at least one rule")
	}
	if interval < 0 {
		return nil, fmt.Errorf("slo: negative interval %v", interval)
	}
	if interval == 0 {
		interval = DefaultInterval
	}
	var longest sim.Time
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Long > longest {
			longest = r.Long
		}
	}
	cap := int(longest/interval) + 2
	return &Evaluator{
		eng: eng, src: src, rules: rules, interval: interval,
		ring:   make([]sample, cap),
		active: make([]bool, len(rules)),
		burns:  make([]float64, 2*len(rules)),
	}, nil
}

// Rules returns the rule set.
func (e *Evaluator) Rules() []Rule { return e.rules }

// Interval returns the evaluation period.
func (e *Evaluator) Interval() sim.Time { return e.interval }

// Start begins periodic evaluation on the engine's clock.
func (e *Evaluator) Start() { e.eng.NewTicker(e.interval, func() { e.Check() }) }

// at returns the i-th most recent sample (0 = newest).
func (e *Evaluator) at(i int) *sample {
	idx := e.head - 1 - i
	if idx < 0 {
		idx += len(e.ring)
	}
	return &e.ring[idx]
}

// windowStart finds the snapshot that opened the window [now-w, now]: the
// newest sample at or before now-w, falling back to the oldest retained
// sample while the run is younger than the window.
func (e *Evaluator) windowStart(now, w sim.Time) *sample {
	cut := now - w
	for i := 1; i < e.n; i++ {
		if e.at(i).at <= cut {
			return e.at(i)
		}
	}
	return e.at(e.n - 1)
}

// burn computes the burn rate over window w ending at the newest sample.
func (e *Evaluator) burn(rule *Rule, w sim.Time) float64 {
	if e.n < 2 {
		return 0
	}
	newest := e.at(0)
	start := e.windowStart(newest.at, w)
	total := newest.total - start.total
	if total <= 0 {
		return 0
	}
	badFrac := (newest.bad - start.bad) / total
	return badFrac / (1 - rule.Target)
}

// Check takes one counter snapshot and evaluates every rule. It is the
// ticker body, and also callable directly by hosts that already tick on
// their own schedule (the flight recorder). Returns whether any rule is
// active after the evaluation.
func (e *Evaluator) Check() bool {
	now := e.eng.Now()
	bad, total := e.src.Counts()
	e.ring[e.head] = sample{at: now, bad: bad, total: total}
	e.head = (e.head + 1) % len(e.ring)
	if e.n < len(e.ring) {
		e.n++
	}

	any := false
	for i := range e.rules {
		r := &e.rules[i]
		sb := e.burn(r, r.Short)
		lb := e.burn(r, r.Long)
		e.burns[2*i], e.burns[2*i+1] = sb, lb
		next := sb >= r.Burn && lb >= r.Burn
		if next != e.active[i] {
			e.transitions++
			if len(e.alerts) < maxAlertHistory {
				e.alerts = append(e.alerts, Alert{
					Rule: r.Name, At: now, Active: next, ShortBurn: sb, LongBurn: lb,
				})
			}
			e.active[i] = next
		}
		any = any || e.active[i]
	}
	return any
}

// AnyActive reports whether any rule is currently firing.
func (e *Evaluator) AnyActive() bool {
	for _, a := range e.active {
		if a {
			return true
		}
	}
	return false
}

// Active returns the names of currently firing rules (nil when quiet).
func (e *Evaluator) Active() []string {
	var names []string
	for i, a := range e.active {
		if a {
			names = append(names, e.rules[i].Name)
		}
	}
	return names
}

// Burns returns rule i's current (short, long) burn rates.
func (e *Evaluator) Burns(i int) (short, long float64) {
	return e.burns[2*i], e.burns[2*i+1]
}

// Alerts returns the transition history (bounded; see Transitions for the
// unbounded count).
func (e *Evaluator) Alerts() []Alert { return e.alerts }

// Transitions returns how many rule state changes have happened.
func (e *Evaluator) Transitions() int { return e.transitions }

// Format renders the rule table with current burn rates and alert state.
func (e *Evaluator) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s  %s\n",
		"rule", "target", "short", "long", "burn", "s-burn", "l-burn", "state")
	for i := range e.rules {
		r := &e.rules[i]
		state := "ok"
		if e.active[i] {
			state = "FIRING"
		}
		sb, lb := e.Burns(i)
		fmt.Fprintf(&b, "%-12s %8.4g %8s %8s %8.4g %8.3g %8.3g  %s\n",
			r.Name, r.Target, r.Short, r.Long, r.Burn, sb, lb, state)
	}
	if len(e.alerts) > 0 {
		b.WriteString("transitions:\n")
		for _, a := range e.alerts {
			verb := "resolved"
			if a.Active {
				verb = "fired"
			}
			fmt.Fprintf(&b, "  %-12s %s at %s (burn short=%.3g long=%.3g)\n",
				a.Rule, verb, a.At, a.ShortBurn, a.LongBurn)
		}
	}
	return b.String()
}
