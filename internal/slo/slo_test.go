package slo

import (
	"strings"
	"testing"

	"github.com/iocost-sim/iocost/internal/sim"
)

// fakeSource is a programmable cumulative counter pair.
type fakeSource struct{ bad, total float64 }

func (s *fakeSource) Counts() (float64, float64) { return s.bad, s.total }

func TestRuleValidate(t *testing.T) {
	good := Rule{Name: "r", Target: 0.99, Short: sim.Second, Long: 10 * sim.Second, Burn: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Rule{
		{Target: 0.99, Short: 1, Long: 2, Burn: 1},                              // no name
		{Name: "r", Target: 0, Short: 1, Long: 2, Burn: 1},                      // target out of range
		{Name: "r", Target: 1, Short: 1, Long: 2, Burn: 1},                      // target out of range
		{Name: "r", Target: 0.9, Short: 2, Long: 1, Burn: 1},                    // long < short
		{Name: "r", Target: 0.9, Short: 0, Long: 1, Burn: 1},                    // zero window
		{Name: "r", Target: 0.9, Short: 1, Long: 2, Burn: 0},                    // zero burn
		{Name: "r", Target: 0.9, Short: -1, Long: 2, Burn: 1},                   // negative
		{Name: "r", Target: 0.9, Short: 1, Long: 2, Burn: -3},                   // negative burn
		{Name: "", Target: 0.999, Short: sim.Second, Long: sim.Second, Burn: 1}, // no name again
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("rule %+v validated", bad)
		}
	}
	for _, r := range DefaultRules() {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBurnRateAlert drives a synthetic error ramp through both windows and
// pins fire + resolve transitions.
func TestBurnRateAlert(t *testing.T) {
	eng := sim.New()
	src := &fakeSource{}
	rules := []Rule{{
		Name: "page", Target: 0.99, // 1% budget
		Short: sim.Second, Long: 4 * sim.Second, Burn: 5, // fires at >= 5% bad
	}}
	ev, err := NewEvaluator(eng, src, rules, 250*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ev.Start()

	// Healthy phase: plenty of traffic, no errors.
	eng.NewTicker(250*sim.Millisecond, func() { src.total += 100 })
	eng.RunUntil(5 * sim.Second)
	if ev.AnyActive() {
		t.Fatalf("alert active on a healthy run: %v", ev.Active())
	}

	// Outage: 50% of events bad — burn 50 against a threshold of 5. The
	// short window sees it almost immediately; the long window needs the
	// bad fraction over 4s to cross 5%, i.e. after ~0.5s of outage.
	eng.NewTicker(250*sim.Millisecond, func() { src.bad += 50 })
	eng.RunUntil(8 * sim.Second)
	if !ev.AnyActive() {
		t.Fatal("alert did not fire during outage")
	}
	if got := ev.Active(); len(got) != 1 || got[0] != "page" {
		t.Fatalf("active rules %v, want [page]", got)
	}

	if ev.Transitions() == 0 || len(ev.Alerts()) == 0 {
		t.Fatal("no transitions recorded")
	}
	first := ev.Alerts()[0]
	if first.Rule != "page" || !first.Active || first.ShortBurn < 5 {
		t.Fatalf("first transition %+v, want active page with burn >= 5", first)
	}
	if !strings.Contains(ev.Format(), "FIRING") {
		t.Fatalf("Format missing FIRING:\n%s", ev.Format())
	}
}

// TestBurnRateResolve pins that an alert resolves once the windows drain.
func TestBurnRateResolve(t *testing.T) {
	eng := sim.New()
	src := &fakeSource{}
	ev, err := NewEvaluator(eng, src, []Rule{{
		Name: "page", Target: 0.99, Short: sim.Second, Long: 2 * sim.Second, Burn: 5,
	}}, 250*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ev.Start()
	outage := true
	eng.NewTicker(250*sim.Millisecond, func() {
		src.total += 100
		if outage {
			src.bad += 50
		}
	})
	eng.RunUntil(3 * sim.Second)
	if !ev.AnyActive() {
		t.Fatal("alert did not fire")
	}
	outage = false
	eng.RunUntil(8 * sim.Second)
	if ev.AnyActive() {
		t.Fatalf("alert still active %v after recovery", ev.Active())
	}
	al := ev.Alerts()
	last := al[len(al)-1]
	if last.Active {
		t.Fatalf("last transition %+v, want resolve", last)
	}
	if !strings.Contains(ev.Format(), "resolved") {
		t.Fatalf("Format missing resolve line:\n%s", ev.Format())
	}
}

// TestEvaluatorDeterminism pins that two identical drives produce identical
// transition histories.
func TestEvaluatorDeterminism(t *testing.T) {
	run := func() []Alert {
		eng := sim.New()
		src := &fakeSource{}
		ev, err := NewEvaluator(eng, src, DefaultRules(), 0)
		if err != nil {
			t.Fatal(err)
		}
		ev.Start()
		tick := 0
		eng.NewTicker(100*sim.Millisecond, func() {
			tick++
			src.total += 40
			if tick > 30 && tick < 90 {
				src.bad += 10
			}
		})
		eng.RunUntil(15 * sim.Second)
		return append([]Alert(nil), ev.Alerts()...)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("scenario produced no transitions")
	}
	if len(a) != len(b) {
		t.Fatalf("histories differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transition %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEvaluatorErrors pins constructor validation.
func TestEvaluatorErrors(t *testing.T) {
	eng := sim.New()
	if _, err := NewEvaluator(eng, nil, DefaultRules(), 0); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewEvaluator(eng, &fakeSource{}, nil, 0); err == nil {
		t.Fatal("empty rules accepted")
	}
	if _, err := NewEvaluator(eng, &fakeSource{}, DefaultRules(), -1); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := NewEvaluator(eng, &fakeSource{}, []Rule{{Name: "x"}}, 0); err == nil {
		t.Fatal("invalid rule accepted")
	}
}

// TestCheckAllocFree pins that steady-state checks allocate nothing — the
// property that lets the flight recorder evaluate rules on the hot path's
// clock without breaking the whole-stack 0-alloc test.
func TestCheckAllocFree(t *testing.T) {
	eng := sim.New()
	src := &fakeSource{total: 1000}
	ev, err := NewEvaluator(eng, src, DefaultRules(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the ring past every window.
	for i := 0; i < 300; i++ {
		src.total += 10
		ev.Check()
	}
	avg := testing.AllocsPerRun(100, func() {
		src.total += 10
		ev.Check()
	})
	if avg != 0 {
		t.Fatalf("Check allocates %v per call in steady state", avg)
	}
}
