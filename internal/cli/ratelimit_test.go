package cli

import (
	"strings"
	"testing"
)

// fakeClock is a manually advanced nanosecond clock.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64      { return c.t }
func (c *fakeClock) advance(d int64) { c.t += d }

func TestRateLimiterBucket(t *testing.T) {
	clk := &fakeClock{}
	rl := NewRateLimiter(1000, 2, clk.now)

	// Burst of 2 passes, third is suppressed.
	if !rl.Allow("a") || !rl.Allow("a") {
		t.Fatal("burst denied")
	}
	if rl.Allow("a") {
		t.Fatal("over-burst allowed")
	}
	if rl.Allow("a") {
		t.Fatal("over-burst allowed again")
	}
	if n := rl.TakeSuppressed("a"); n != 2 {
		t.Fatalf("suppressed = %d, want 2", n)
	}
	if n := rl.TakeSuppressed("a"); n != 0 {
		t.Fatalf("TakeSuppressed did not clear: %d", n)
	}

	// Keys are independent buckets.
	if !rl.Allow("b") {
		t.Fatal("fresh key denied")
	}

	// One token refills per interval; partial intervals give nothing.
	clk.advance(999)
	if rl.Allow("a") {
		t.Fatal("allowed before a full interval elapsed")
	}
	clk.advance(1)
	if !rl.Allow("a") {
		t.Fatal("denied after refill")
	}
	if rl.Allow("a") {
		t.Fatal("single refill granted more than one token")
	}

	// A long idle refills at most up to the burst size.
	clk.advance(100 * 1000)
	if !rl.Allow("a") || !rl.Allow("a") {
		t.Fatal("bucket did not refill to burst")
	}
	if rl.Allow("a") {
		t.Fatal("bucket refilled past burst")
	}
}

func TestRateLimiterRefillPhase(t *testing.T) {
	clk := &fakeClock{}
	rl := NewRateLimiter(1000, 1, clk.now)

	if !rl.Allow("k") {
		t.Fatal("first denied")
	}
	// 1.5 intervals: one token, and the leftover half-interval must carry
	// over (bucket time advances by whole intervals only).
	clk.advance(1500)
	if !rl.Allow("k") {
		t.Fatal("denied after 1.5 intervals")
	}
	clk.advance(500)
	if !rl.Allow("k") {
		t.Fatal("carry-over half interval lost")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	clk := &fakeClock{}
	rl := NewRateLimiter(0, 1, clk.now)
	for i := 0; i < 100; i++ {
		if !rl.Allow("x") {
			t.Fatal("disabled limiter suppressed a message")
		}
	}
	if n := rl.Suppressed(); n != 0 {
		t.Fatalf("disabled limiter counted %d suppressed", n)
	}
}

// TestRateLimitedLoggerDeterministic pins that the same event sequence on
// the same (simulated) clock produces byte-identical output — the property
// the tune daemon's progress stream relies on.
func TestRateLimitedLoggerDeterministic(t *testing.T) {
	run := func() string {
		clk := &fakeClock{}
		var sb strings.Builder
		lg := NewRateLimitedLogger(&sb, "tune: ", 1000, 1, clk.now)
		for i := 0; i < 10; i++ {
			lg.Logf("round", "round %d", i)
			lg.Logf("score", "score %d", i*i)
			clk.advance(250)
		}
		lg.Flush()
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("output differs across identical runs:\n%q\n%q", a, b)
	}

	// 10 events, 250ns apart, 1 token per 1000ns with burst 1: events at
	// t=0, 1000, 2000 pass (i = 0, 4, 8), the rest are suppressed and the
	// passing lines carry the counts.
	want := "tune: round 0\n" +
		"tune: score 0\n" +
		"tune: round 4 [suppressed 3]\n" +
		"tune: score 16 [suppressed 3]\n" +
		"tune: round 8 [suppressed 3]\n" +
		"tune: score 64 [suppressed 3]\n" +
		"tune: round: 1 messages suppressed\n" +
		"tune: score: 1 messages suppressed\n"
	if a != want {
		t.Fatalf("output = %q\nwant     %q", a, want)
	}
}

func TestRateLimitedLoggerPassthrough(t *testing.T) {
	clk := &fakeClock{}
	var sb strings.Builder
	lg := NewRateLimitedLogger(&sb, "", 1000, 3, clk.now)
	for i := 0; i < 3; i++ {
		if !lg.Logf("k", "line %d", i) {
			t.Fatalf("line %d suppressed within burst", i)
		}
	}
	if lg.Logf("k", "line 3") {
		t.Fatal("line 3 passed over burst")
	}
	lg.Flush()
	got := sb.String()
	want := "line 0\nline 1\nline 2\nk: 1 messages suppressed\n"
	if got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}
