package cli

import (
	"fmt"
	"io"
)

// RateLimiter is a token-bucket rate limiter keyed per message class, in the
// spirit of the kernel's printk_ratelimited and cri-resource-manager's
// rate-limited logger: each key gets Burst tokens that refill at one per
// Interval, and messages arriving with an empty bucket are suppressed and
// counted. The clock is injected as a nanosecond function so the limiter is
// exactly as deterministic as its caller — under simulated time the same
// event sequence always logs the same lines (the tune daemon runs it on sim
// time; real tools can pass time.Now().UnixNano).
type RateLimiter struct {
	interval int64 // ns per token refill
	burst    int64 // bucket capacity
	now      func() int64

	buckets map[string]*rlBucket
	keys    []string // registration order, for deterministic reporting
}

type rlBucket struct {
	tokens     int64
	last       int64 // clock reading at the last refill
	suppressed uint64
}

// NewRateLimiter returns a limiter allowing burst messages per key
// immediately and one per interval (in ns) thereafter. burst < 1 is treated
// as 1; interval < 1 disables limiting (every message passes).
func NewRateLimiter(interval int64, burst int, now func() int64) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		interval: interval,
		burst:    int64(burst),
		now:      now,
		buckets:  make(map[string]*rlBucket),
	}
}

// Allow reports whether a message with the given key may be emitted now,
// consuming a token if so. Denied calls increment the key's suppressed count
// (drained by TakeSuppressed).
func (rl *RateLimiter) Allow(key string) bool {
	if rl.interval < 1 {
		return true
	}
	t := rl.now()
	b := rl.buckets[key]
	if b == nil {
		b = &rlBucket{tokens: rl.burst, last: t}
		rl.buckets[key] = b
		rl.keys = append(rl.keys, key)
	} else if t > b.last {
		refill := (t - b.last) / rl.interval
		if refill > 0 {
			b.tokens += refill
			if b.tokens > rl.burst {
				b.tokens = rl.burst
			}
			b.last += refill * rl.interval
		}
	}
	if b.tokens > 0 {
		b.tokens--
		return true
	}
	b.suppressed++
	return false
}

// TakeSuppressed returns and clears the number of messages suppressed for
// key since the last call.
func (rl *RateLimiter) TakeSuppressed(key string) uint64 {
	b := rl.buckets[key]
	if b == nil {
		return 0
	}
	n := b.suppressed
	b.suppressed = 0
	return n
}

// Suppressed returns the total currently-pending suppressed count across all
// keys without clearing it.
func (rl *RateLimiter) Suppressed() uint64 {
	var n uint64
	for _, key := range rl.keys {
		n += rl.buckets[key].suppressed
	}
	return n
}

// RateLimitedLogger writes formatted lines to an io.Writer through a
// RateLimiter. Suppressed lines are counted per key and surfaced the next
// time that key is allowed through ("... [suppressed N]"), so bursty
// progress loops stay readable without losing the fact that output was
// dropped.
type RateLimitedLogger struct {
	W      io.Writer
	Prefix string
	rl     *RateLimiter
}

// NewRateLimitedLogger wraps w with per-key rate limiting. interval is ns
// per message per key after the initial burst.
func NewRateLimitedLogger(w io.Writer, prefix string, interval int64, burst int, now func() int64) *RateLimitedLogger {
	return &RateLimitedLogger{W: w, Prefix: prefix, rl: NewRateLimiter(interval, burst, now)}
}

// Logf emits one formatted line under key's budget. It returns true if the
// line was written. A line that follows suppressed ones carries a
// "[suppressed N]" suffix accounting for them.
func (l *RateLimitedLogger) Logf(key, format string, args ...any) bool {
	if !l.rl.Allow(key) {
		return false
	}
	line := fmt.Sprintf(format, args...)
	if n := l.rl.TakeSuppressed(key); n > 0 {
		line = fmt.Sprintf("%s [suppressed %d]", line, n)
	}
	fmt.Fprintf(l.W, "%s%s\n", l.Prefix, line)
	return true
}

// Flush reports any still-suppressed counts, one line per key in first-use
// order, and clears them. Call once at shutdown so the tail of a bursty run
// is accounted for.
func (l *RateLimitedLogger) Flush() {
	for _, key := range l.rl.keys {
		if n := l.rl.TakeSuppressed(key); n > 0 {
			fmt.Fprintf(l.W, "%s%s: %d messages suppressed\n", l.Prefix, key, n)
		}
	}
}
