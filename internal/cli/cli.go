// Package cli standardizes the flag surface shared by the iocost-* commands:
// one version string, a uniform usage banner, a -version flag, and a fatal
// helper that prefixes errors with the tool name. Keeping these in one place
// is what makes `iocost-sim -seed 7` and `iocost-trace capture -seed 7` feel
// like one toolchain instead of six scripts.
package cli

import (
	"flag"
	"fmt"
	"os"
)

// Version is the toolchain version reported by every command's -version.
const Version = "0.9.0"

var versionFlag *bool

// Setup installs a standard usage function for tool on the default flag set
// and registers the -version flag. Call before flag.Parse (or use Parse).
func Setup(tool, synopsis string) {
	versionFlag = flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: %s %s\n", tool, synopsis)
		flag.PrintDefaults()
	}
}

// Parse parses the default flag set and handles -version.
func Parse(tool string) {
	flag.Parse()
	if versionFlag != nil && *versionFlag {
		PrintVersion(tool)
		os.Exit(0)
	}
}

// PrintVersion reports tool's version on stdout.
func PrintVersion(tool string) {
	fmt.Printf("%s %s\n", tool, Version)
}

// Fatalf prints "tool: message" to stderr and exits 1.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(1)
}
