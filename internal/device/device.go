// Package device implements the simulated storage devices the controllers
// are evaluated on: SSD models with internal parallelism, write-buffer
// absorption and garbage-collection stalls; a spinning-disk model with seek
// and rotational delays; and remote/cloud block stores with provisioned-IOPS
// token buckets (AWS EBS, Google Cloud Persistent Disk profiles).
//
// A device accepts requests, services up to Parallelism of them concurrently
// (the device's internal channels/heads), and completes each after a
// model-specific service time. Latency therefore rises with occupancy, which
// is exactly the signal IO control reacts to.
package device

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/ring"
	"github.com/iocost-sim/iocost/internal/sim"
)

// Device is a simulated block device.
type Device interface {
	// Name identifies the device model.
	Name() string
	// Submit queues b for service. done runs at completion time, after
	// b.Completed has been set.
	Submit(b *bio.Bio, done func(*bio.Bio))
	// InFlight returns the number of requests submitted but not completed.
	InFlight() int
	// Parallelism returns how many requests the device services
	// concurrently.
	Parallelism() int
}

// pending is a queued request, possibly a merge of several contiguous bios
// serviced as one device operation. Pendings are pooled per device (the
// nextFree link threads the free list) so the queue → service → complete
// cycle allocates nothing in steady state.
type pending struct {
	b    *bio.Bio
	done func(*bio.Bio)
	// extra holds requests merged into this one beyond b; size is the
	// merged transfer length (b.Size when nothing merged).
	extra []*pending
	size  int64

	// batchNext chains separate requests whose completions share one sim
	// event (same finish instant, consecutive seqs); see engine.begin.
	batchNext *pending

	nextFree *pending
}

// engine is the shared queueing/dispatch machinery: a FIFO in front of
// Parallelism service slots, with an optional token-bucket serialization
// point for provisioned-IOPS devices. Concrete models supply the
// service-time function.
type engine struct {
	eng   *sim.Engine
	name  string
	slots int
	busy  int
	// Reads and writes queue separately and are dispatched round-robin,
	// reflecting how real devices service reads from their internal
	// parallelism even while a deep write queue drains; without this a
	// write flood would head-of-line-block every read, which flash does
	// not do.
	queues  [2]ring.Queue[*pending]
	lastDir int

	// pfree is the pending free list; beginFn/finishFn are the pooled
	// event callbacks (built lazily on first Submit so the zero-ish
	// literal construction in the concrete models keeps working).
	pfree    *pending
	beginFn  func(any)
	finishFn func(any)

	// Completion batching, per direction: when a request's finish lands
	// at the same instant as a previously scheduled finish event that is
	// still the tail of its timing-wheel slot (sim.StillTail — no other
	// event at that instant has been scheduled since), the request rides
	// that event via the batchNext chain instead of scheduling its own.
	// Delivery order is provably identical — the chained completion runs
	// exactly where its own event would have — but a burst of parallel
	// same-cost completions costs one wheel operation, not one per
	// request. batchTail is the chain tail, batchAt the shared finish
	// instant, batchEv the carrying event.
	batchTail [2]*pending
	batchAt   [2]sim.Time
	batchEv   [2]sim.EventID

	// merge enables back-merging of contiguous same-cgroup requests in
	// the queue, as the block layer's elevator does. mergeLimit caps the
	// merged transfer size.
	merge      bool
	mergeLimit int64
	// Merges counts bios absorbed into earlier requests.
	Merges uint64

	// Lifetime per-direction completion counters, indexed by bio.Op.
	doneIOs   [2]uint64
	doneBytes [2]uint64

	// Token bucket: a request may not begin service before nextToken;
	// each request advances nextToken by tokNsPerIO + size*tokNsPerByte.
	// Zero values disable the bucket.
	tokNsPerIO   float64
	tokNsPerByte float64
	nextToken    sim.Time

	// service returns how long the request takes once it starts.
	service func(b *bio.Bio) sim.Time
}

func (d *engine) Name() string     { return d.name }
func (d *engine) Parallelism() int { return d.slots }
func (d *engine) InFlight() int    { return d.busy + d.queues[0].Len() + d.queues[1].Len() }

// DoneIOs returns the lifetime completed-request count for op.
func (d *engine) DoneIOs(op bio.Op) uint64 { return d.doneIOs[int(op)] }

// DoneBytes returns the lifetime completed bytes for op.
func (d *engine) DoneBytes(op bio.Op) uint64 { return d.doneBytes[int(op)] }

// QueueDepth returns the number of requests queued but not yet in service.
func (d *engine) QueueDepth() int { return d.queues[0].Len() + d.queues[1].Len() }

// Busy returns the number of requests currently in service.
func (d *engine) Busy() int { return d.busy }

// mergeScan bounds how far back the elevator looks for a merge candidate.
const mergeScan = 64

// getPending takes a request from the free list, growing it on demand.
func (d *engine) getPending(b *bio.Bio, done func(*bio.Bio)) *pending {
	p := d.pfree
	if p == nil {
		p = &pending{}
	} else {
		d.pfree = p.nextFree
	}
	p.b, p.done, p.size = b, done, b.Size
	p.nextFree = nil
	return p
}

// putPending recycles a request (its merged extras have already been
// released individually). The extra backing array is retained.
func (d *engine) putPending(p *pending) {
	p.b, p.done = nil, nil
	p.extra = p.extra[:0]
	p.batchNext = nil
	p.nextFree = d.pfree
	d.pfree = p
}

func (d *engine) Submit(b *bio.Bio, done func(*bio.Bio)) {
	if d.finishFn == nil {
		d.finishFn = func(a any) { d.finish(a.(*pending)) }
		d.beginFn = func(a any) { d.begin(a.(*pending)) }
	}
	q := &d.queues[int(b.Op)]
	if d.merge {
		// Back-merge: look for a queued same-cgroup request whose end
		// matches this bio's offset, scanning recent entries the way an
		// elevator's merge lookup does.
		n := q.Len()
		lo := n - mergeScan
		if lo < 0 {
			lo = 0
		}
		for i := n - 1; i >= lo; i-- {
			cand := *q.At(i)
			if cand.b.CG == b.CG &&
				cand.b.Off+cand.size == b.Off &&
				cand.size+b.Size <= d.mergeLimit {
				cand.extra = append(cand.extra, d.getPending(b, done))
				cand.size += b.Size
				d.Merges++
				return
			}
		}
	}
	q.Push(d.getPending(b, done))
	d.dispatch()
}

func (d *engine) pop() (*pending, bool) {
	// Alternate directions when both have work.
	next := 1 - d.lastDir
	if d.queues[next].Empty() {
		next = d.lastDir
	}
	p, ok := d.queues[next].Pop()
	if !ok {
		return nil, false
	}
	d.lastDir = next
	return p, true
}

func (d *engine) dispatch() {
	tok := d.tokNsPerIO > 0 || d.tokNsPerByte > 0
	for d.busy < d.slots {
		p, ok := d.pop()
		if !ok {
			return
		}
		d.busy++

		if tok {
			start := d.eng.Now()
			if d.nextToken > start {
				start = d.nextToken
			}
			d.nextToken = start + sim.Time(d.tokNsPerIO+float64(p.b.Size)*d.tokNsPerByte)
			if start > d.eng.Now() {
				d.eng.AtCall(start, d.beginFn, p)
				continue
			}
		}
		d.begin(p)
	}
}

func (d *engine) begin(p *pending) {
	now := d.eng.Now()
	p.b.Dispatched = now
	for _, e := range p.extra {
		e.b.Dispatched = now
	}
	svcBio := p.b
	if p.size != p.b.Size {
		// Service the merged request as one transfer; the constituent
		// bios keep their own sizes for accounting.
		svcBio = &bio.Bio{Op: p.b.Op, Flags: p.b.Flags, Off: p.b.Off, Size: p.size, CG: p.b.CG}
	}
	svc := d.service(svcBio)
	if svc < 0 {
		svc = 0
	}
	at := now + svc
	op := int(p.b.Op)
	if at == d.batchAt[op] && d.batchTail[op] != nil && d.eng.StillTail(d.batchEv[op]) {
		d.batchTail[op].batchNext = p
		d.batchTail[op] = p
		return
	}
	d.batchEv[op] = d.eng.AtCall(at, d.finishFn, p)
	d.batchTail[op], d.batchAt[op] = p, at
}

// finish delivers every request riding this event: the head pending, then
// each batchNext-chained request, each processed exactly as if it had its
// own back-to-back event — the device's half of batched completion
// delivery. The pendings (and their merged extras) return to the free list
// afterwards.
func (d *engine) finish(p *pending) {
	for p != nil {
		next := p.batchNext
		p.batchNext = nil
		d.finishOne(p)
		p = next
	}
}

func (d *engine) finishOne(p *pending) {
	end := d.eng.Now()
	p.b.Completed = end
	d.busy--
	op := int(p.b.Op)
	d.doneIOs[op] += uint64(1 + len(p.extra))
	d.doneBytes[op] += uint64(p.size)
	// Dispatch before delivering the completion so the device stays
	// busy even if the completion handler submits more work.
	d.dispatch()
	p.done(p.b)
	for _, e := range p.extra {
		e.b.Completed = end
		e.done(e.b)
		d.putPending(e)
	}
	d.putPending(p)
}

// seqTracker detects sequential access per issuing cgroup, the same way a
// device's internal readahead/striping logic benefits contiguous streams.
// The per-cgroup stream state is a slice indexed by cgroup ID — the
// per-bio lookup is an array index, not a map hash; streams from a foreign
// hierarchy whose ID collides fall back to a side map.
type seqTracker struct {
	byID    []seqStream
	foreign map[*cgroup.Node]int64
	rootEnd int64 // stream for bios with no cgroup
	// One-entry stream cache: workloads issue runs of bios from the same
	// cgroup, so the previous bio's stream is almost always this bio's.
	lastCG *cgroup.Node
	lastSt *seqStream
}

type seqStream struct {
	cg  *cgroup.Node
	end int64
}

func newSeqTracker() *seqTracker {
	return &seqTracker{}
}

// sequential reports whether b continues the issuer's previous request and
// records b's end offset for the next check. Requests with no cgroup are
// keyed to the root stream (nil).
func (t *seqTracker) sequential(b *bio.Bio) bool {
	cg := b.CG
	if cg == nil {
		seq := t.rootEnd == b.Off && b.Off != 0
		t.rootEnd = b.End()
		return seq
	}
	if cg == t.lastCG {
		st := t.lastSt
		seq := st.end == b.Off && b.Off != 0
		st.end = b.End()
		return seq
	}
	id := cg.ID()
	if id >= len(t.byID) {
		grown := make([]seqStream, id+1)
		copy(grown, t.byID)
		t.byID = grown
		t.lastCG, t.lastSt = nil, nil // cache points into the old array
	}
	st := &t.byID[id]
	if st.cg == nil {
		st.cg = cg
	} else if st.cg != cg {
		// ID collision across hierarchies: keep this stream in the map.
		if t.foreign == nil {
			t.foreign = make(map[*cgroup.Node]int64)
		}
		seq := t.foreign[cg] == b.Off && b.Off != 0
		t.foreign[cg] = b.End()
		return seq
	}
	t.lastCG, t.lastSt = cg, st
	seq := st.end == b.Off && b.Off != 0
	st.end = b.End()
	return seq
}
