// Package device implements the simulated storage devices the controllers
// are evaluated on: SSD models with internal parallelism, write-buffer
// absorption and garbage-collection stalls; a spinning-disk model with seek
// and rotational delays; and remote/cloud block stores with provisioned-IOPS
// token buckets (AWS EBS, Google Cloud Persistent Disk profiles).
//
// A device accepts requests, services up to Parallelism of them concurrently
// (the device's internal channels/heads), and completes each after a
// model-specific service time. Latency therefore rises with occupancy, which
// is exactly the signal IO control reacts to.
package device

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/ring"
	"github.com/iocost-sim/iocost/internal/sim"
)

// Device is a simulated block device.
type Device interface {
	// Name identifies the device model.
	Name() string
	// Submit queues b for service. done runs at completion time, after
	// b.Completed has been set.
	Submit(b *bio.Bio, done func(*bio.Bio))
	// InFlight returns the number of requests submitted but not completed.
	InFlight() int
	// Parallelism returns how many requests the device services
	// concurrently.
	Parallelism() int
}

// pending is a queued request, possibly a merge of several contiguous bios
// serviced as one device operation.
type pending struct {
	b    *bio.Bio
	done func(*bio.Bio)
	// extra holds bios merged into this request beyond b; size is the
	// merged transfer length (b.Size when nothing merged).
	extra []pending
	size  int64
}

// engine is the shared queueing/dispatch machinery: a FIFO in front of
// Parallelism service slots, with an optional token-bucket serialization
// point for provisioned-IOPS devices. Concrete models supply the
// service-time function.
type engine struct {
	eng   *sim.Engine
	name  string
	slots int
	busy  int
	// Reads and writes queue separately and are dispatched round-robin,
	// reflecting how real devices service reads from their internal
	// parallelism even while a deep write queue drains; without this a
	// write flood would head-of-line-block every read, which flash does
	// not do.
	queues  [2]ring.Queue[pending]
	lastDir int

	// merge enables back-merging of contiguous same-cgroup requests in
	// the queue, as the block layer's elevator does. mergeLimit caps the
	// merged transfer size.
	merge      bool
	mergeLimit int64
	// Merges counts bios absorbed into earlier requests.
	Merges uint64

	// Lifetime per-direction completion counters, indexed by bio.Op.
	doneIOs   [2]uint64
	doneBytes [2]uint64

	// Token bucket: a request may not begin service before nextToken;
	// each request advances nextToken by tokNsPerIO + size*tokNsPerByte.
	// Zero values disable the bucket.
	tokNsPerIO   float64
	tokNsPerByte float64
	nextToken    sim.Time

	// service returns how long the request takes once it starts.
	service func(b *bio.Bio) sim.Time
}

func (d *engine) Name() string     { return d.name }
func (d *engine) Parallelism() int { return d.slots }
func (d *engine) InFlight() int    { return d.busy + d.queues[0].Len() + d.queues[1].Len() }

// DoneIOs returns the lifetime completed-request count for op.
func (d *engine) DoneIOs(op bio.Op) uint64 { return d.doneIOs[int(op)] }

// DoneBytes returns the lifetime completed bytes for op.
func (d *engine) DoneBytes(op bio.Op) uint64 { return d.doneBytes[int(op)] }

// QueueDepth returns the number of requests queued but not yet in service.
func (d *engine) QueueDepth() int { return d.queues[0].Len() + d.queues[1].Len() }

// Busy returns the number of requests currently in service.
func (d *engine) Busy() int { return d.busy }

// mergeScan bounds how far back the elevator looks for a merge candidate.
const mergeScan = 64

func (d *engine) Submit(b *bio.Bio, done func(*bio.Bio)) {
	q := &d.queues[int(b.Op)]
	if d.merge {
		// Back-merge: look for a queued same-cgroup request whose end
		// matches this bio's offset, scanning recent entries the way an
		// elevator's merge lookup does.
		n := q.Len()
		lo := n - mergeScan
		if lo < 0 {
			lo = 0
		}
		for i := n - 1; i >= lo; i-- {
			cand := q.At(i)
			if cand.b.CG == b.CG &&
				cand.b.Off+cand.size == b.Off &&
				cand.size+b.Size <= d.mergeLimit {
				cand.extra = append(cand.extra, pending{b: b, done: done, size: b.Size})
				cand.size += b.Size
				d.Merges++
				return
			}
		}
	}
	q.Push(pending{b: b, done: done, size: b.Size})
	d.dispatch()
}

func (d *engine) pop() (pending, bool) {
	// Alternate directions when both have work.
	next := 1 - d.lastDir
	if d.queues[next].Empty() {
		next = d.lastDir
	}
	p, ok := d.queues[next].Pop()
	if !ok {
		return pending{}, false
	}
	d.lastDir = next
	return p, true
}

func (d *engine) dispatch() {
	for d.busy < d.slots {
		p, ok := d.pop()
		if !ok {
			return
		}
		d.busy++

		start := d.eng.Now()
		if d.tokNsPerIO > 0 || d.tokNsPerByte > 0 {
			if d.nextToken > start {
				start = d.nextToken
			}
			d.nextToken = start + sim.Time(d.tokNsPerIO+float64(p.b.Size)*d.tokNsPerByte)
		}

		if start > d.eng.Now() {
			d.eng.At(start, func() { d.begin(p) })
		} else {
			d.begin(p)
		}
	}
}

func (d *engine) begin(p pending) {
	now := d.eng.Now()
	p.b.Dispatched = now
	for i := range p.extra {
		p.extra[i].b.Dispatched = now
	}
	svcBio := p.b
	if p.size != p.b.Size {
		// Service the merged request as one transfer; the constituent
		// bios keep their own sizes for accounting.
		svcBio = &bio.Bio{Op: p.b.Op, Flags: p.b.Flags, Off: p.b.Off, Size: p.size, CG: p.b.CG}
	}
	svc := d.service(svcBio)
	if svc < 0 {
		svc = 0
	}
	d.eng.After(svc, func() {
		end := d.eng.Now()
		p.b.Completed = end
		d.busy--
		op := int(p.b.Op)
		d.doneIOs[op] += uint64(1 + len(p.extra))
		d.doneBytes[op] += uint64(p.size)
		// Dispatch before delivering the completion so the device stays
		// busy even if the completion handler submits more work.
		d.dispatch()
		p.done(p.b)
		for _, e := range p.extra {
			e.b.Completed = end
			e.done(e.b)
		}
	})
}

// seqTracker detects sequential access per issuing cgroup, the same way a
// device's internal readahead/striping logic benefits contiguous streams.
type seqTracker struct {
	last map[*cgroupRef]int64
}

// cgroupRef keeps the tracker decoupled from the cgroup package; any stable
// pointer identity works.
type cgroupRef = cgroup.Node

func newSeqTracker() *seqTracker {
	return &seqTracker{last: make(map[*cgroupRef]int64)}
}

// sequential reports whether b continues the issuer's previous request and
// records b's end offset for the next check. Requests with no cgroup are
// keyed to the root stream (nil).
func (t *seqTracker) sequential(b *bio.Bio) bool {
	seq := t.last[b.CG] == b.Off && b.Off != 0
	t.last[b.CG] = b.End()
	return seq
}
