package device

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/rng"
	"github.com/iocost-sim/iocost/internal/sim"
)

// SSDSpec parameterizes a flash device model. Service time for a request is
//
//	base(op, sequential) + size/bandwidth(op)
//
// multiplied by log-normal noise, serviced across Parallelism internal
// channels. Writes are absorbed by a buffer of BufBytes that refills
// (drains to flash) at SustainedWBps; while the buffer has credit, writes
// complete at the fast buffered cost, and once it is exhausted they slow to
// the sustained cost and occasionally incur Pareto-tailed garbage-collection
// stalls. This reproduces the "over-exert in short bursts, then slow down
// drastically" behaviour of real SSDs (§2.1 of the paper).
type SSDSpec struct {
	Name string
	// Parallelism is the number of concurrent internal operations.
	Parallelism int

	// Base service times in nanoseconds for a 4KiB operation.
	RandReadNS  float64
	SeqReadNS   float64
	RandWriteNS float64 // buffered
	SeqWriteNS  float64 // buffered

	// Transfer bandwidth per channel in bytes/ns contributes the
	// size-proportional term.
	ReadBps  float64 // bytes per second
	WriteBps float64 // bytes per second (buffered)

	// Write buffer.
	BufBytes     int64   // burst absorption capacity; 0 disables the buffer model
	SustainedWBp float64 // sustained write bytes per second once buffer is full
	GCStallProb  float64 // per-write probability of a GC stall when buffer-limited
	GCStallNS    float64 // minimum stall; Pareto(alpha=1.5) tail above it

	// Noise is the sigma of the log-normal service-time multiplier.
	Noise float64

	// Merge enables elevator-style back-merging of contiguous
	// same-cgroup requests in the device queue (the block layer's
	// request merging). Off by default: the stock experiments model
	// direct IO, which does not merge.
	Merge bool
}

// SSD is a simulated flash device.
type SSD struct {
	engine
	spec SSDSpec
	rnd  *rng.Source
	seq  *seqTracker

	bufCredit  int64    // bytes of write-buffer credit remaining
	bufLastRef sim.Time // last time credit was refilled
	gcStalls   uint64   // lifetime GC-stall count

	// Fault injection: service times are multiplied by degrade until
	// degradeUntil (thermal throttling, background media scans, firmware
	// housekeeping — the unpredictable behaviours §5 complains about).
	degrade      float64
	degradeUntil sim.Time

	// det is set for specs whose service time is a pure function of
	// (op, size, sequential) — no noise, no buffer model — so the last
	// result can be memoized. Workloads issue runs of identically-shaped
	// requests, making a one-entry cache nearly always hit.
	det     bool
	svcOp   bio.Op
	svcSeq  bool
	svcSize int64
	svcNS   sim.Time
}

// NewSSD builds an SSD from spec, drawing randomness from seed.
func NewSSD(eng *sim.Engine, spec SSDSpec, seed uint64) *SSD {
	d := &SSD{
		spec:      spec,
		rnd:       rng.New(seed),
		seq:       newSeqTracker(),
		bufCredit: spec.BufBytes,
	}
	d.engine = engine{eng: eng, name: spec.Name, slots: spec.Parallelism,
		merge: spec.Merge, mergeLimit: 1 << 20}
	d.engine.service = d.serviceTime
	d.det = spec.Noise == 0 && spec.BufBytes == 0
	return d
}

// Spec returns the device parameters.
func (d *SSD) Spec() SSDSpec { return d.spec }

// InjectDegradation multiplies service times by factor for the given
// duration, modeling a thermal-throttle or housekeeping episode. Injecting
// again extends/replaces the current episode.
func (d *SSD) InjectDegradation(factor float64, dur sim.Time) {
	if factor < 1 {
		factor = 1
	}
	d.degrade = factor
	d.degradeUntil = d.eng.Now() + dur
}

// Degraded reports whether a degradation episode is in effect.
func (d *SSD) Degraded() bool {
	return d.degrade > 1 && d.eng.Now() < d.degradeUntil
}

func (d *SSD) refillBuffer() {
	if d.spec.BufBytes == 0 {
		return
	}
	now := d.eng.Now()
	dt := now - d.bufLastRef
	d.bufLastRef = now
	d.bufCredit += int64(float64(dt) / 1e9 * d.spec.SustainedWBp)
	if d.bufCredit > d.spec.BufBytes {
		d.bufCredit = d.spec.BufBytes
	}
}

// serviceTime computes a request's service duration. Small requests are
// IOPS-limited (the per-op base cost dominates); large requests are
// bandwidth-limited: with Parallelism channels sharing the device's
// aggregate bandwidth, a request's transfer term is size*P/Bps, so peak
// throughput converges to Bps regardless of request size.
func (d *SSD) serviceTime(b *bio.Bio) sim.Time {
	sequential := d.seq.sequential(b)
	if d.det && !d.Degraded() {
		if b.Size == d.svcSize && b.Op == d.svcOp && sequential == d.svcSeq {
			return d.svcNS
		}
		ns := d.serviceTimeSlow(b, sequential)
		d.svcOp, d.svcSeq, d.svcSize, d.svcNS = b.Op, sequential, b.Size, ns
		return ns
	}
	return d.serviceTimeSlow(b, sequential)
}

// serviceTimeSlow is the full service-time model; serviceTime memoizes it
// for deterministic specs.
func (d *SSD) serviceTimeSlow(b *bio.Bio, sequential bool) sim.Time {
	par := float64(d.spec.Parallelism)
	var ns float64
	if b.Op == bio.Read {
		base := d.spec.RandReadNS
		if sequential {
			base = d.spec.SeqReadNS
		}
		ns = maxf(base, float64(b.Size)*par/d.spec.ReadBps*1e9)
	} else {
		base := d.spec.RandWriteNS
		if sequential {
			base = d.spec.SeqWriteNS
		}
		bps := d.spec.WriteBps

		if d.spec.BufBytes > 0 {
			d.refillBuffer()
			if d.bufCredit >= b.Size {
				d.bufCredit -= b.Size
			} else {
				// Buffer exhausted: write proceeds at the sustained
				// drain rate and may hit a GC stall.
				d.bufCredit = 0
				bps = d.spec.SustainedWBp
				if d.spec.GCStallProb > 0 && d.rnd.Bool(d.spec.GCStallProb) {
					base += d.rnd.Pareto(d.spec.GCStallNS, 1.5)
					d.gcStalls++
				}
			}
		}
		ns = maxf(base, float64(b.Size)*par/bps*1e9)
	}
	if d.spec.Noise > 0 {
		ns *= d.rnd.LogNormal(0, d.spec.Noise)
	}
	if d.Degraded() {
		ns *= d.degrade
	}
	return sim.Time(ns)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BufferCredit returns the remaining write-buffer credit in bytes (after
// refill accounting), mainly for tests and diagnostics.
func (d *SSD) BufferCredit() int64 {
	d.refillBuffer()
	return d.bufCredit
}

// GCStalls returns the lifetime count of garbage-collection stalls.
func (d *SSD) GCStalls() uint64 { return d.gcStalls }
