package device

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/rng"
	"github.com/iocost-sim/iocost/internal/sim"
)

// RemoteSpec parameterizes a network-attached block store such as AWS EBS or
// Google Cloud Persistent Disk: every request pays a network round trip, and
// the provider enforces provisioned IOPS and throughput with a token bucket
// (requests queue at the bucket once the provisioned rate is exceeded, which
// is exactly how these products behave).
type RemoteSpec struct {
	Name string
	// RTTNS is the base network round-trip plus backend service time.
	RTTNS float64
	// WriteExtraNS is added to writes (replication acknowledgement).
	WriteExtraNS float64
	// IOPS is the provisioned IOPS cap; 0 means uncapped.
	IOPS float64
	// Bps is the provisioned throughput cap in bytes/second; 0 uncapped.
	Bps float64
	// Parallelism bounds concurrent in-flight requests to the backend.
	Parallelism int
	// Noise is the sigma of the log-normal latency multiplier; network
	// paths are noisier than local flash.
	Noise float64
}

// Remote is a simulated cloud block device.
type Remote struct {
	engine
	spec RemoteSpec
	rnd  *rng.Source
}

// NewRemote builds a remote block store from spec.
func NewRemote(eng *sim.Engine, spec RemoteSpec, seed uint64) *Remote {
	d := &Remote{spec: spec, rnd: rng.New(seed)}
	d.engine = engine{eng: eng, name: spec.Name, slots: spec.Parallelism}
	if spec.IOPS > 0 {
		d.engine.tokNsPerIO = 1e9 / spec.IOPS
	}
	if spec.Bps > 0 {
		d.engine.tokNsPerByte = 1e9 / spec.Bps
	}
	d.engine.service = d.serviceTime
	return d
}

// Spec returns the device parameters.
func (d *Remote) Spec() RemoteSpec { return d.spec }

func (d *Remote) serviceTime(b *bio.Bio) sim.Time {
	ns := d.spec.RTTNS
	if b.Op == bio.Write {
		ns += d.spec.WriteExtraNS
	}
	if d.spec.Bps > 0 {
		ns += float64(b.Size) / d.spec.Bps * 1e9
	}
	if d.spec.Noise > 0 {
		ns *= d.rnd.LogNormal(0, d.spec.Noise)
	}
	return sim.Time(ns)
}
