package device

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/registry"
)

// RegisterMetrics contributes the shared device-engine state to a metrics
// registry, labeled by device name: occupancy, internal queue depth,
// per-direction lifetime IOPS/bandwidth counters and elevator merges. The
// concrete models layer their own metrics on top (SSD write-buffer and GC
// state). All values are reads of state the engine already maintains.
func (d *engine) RegisterMetrics(r *registry.Registry) {
	lbl := registry.L("device", d.name)
	r.GaugeFunc("device_inflight", "requests submitted to the device, queued or in service", lbl,
		func() float64 { return float64(d.InFlight()) })
	r.GaugeFunc("device_busy", "requests in service across internal channels", lbl,
		func() float64 { return float64(d.busy) })
	r.GaugeFunc("device_queued", "requests queued inside the device, not yet in service", lbl,
		func() float64 { return float64(d.QueueDepth()) })
	r.CounterFunc("device_merges_total", "bios absorbed into earlier requests by back-merging", lbl,
		func() float64 { return float64(d.Merges) })
	dir := func(name, help string, fn func(op bio.Op) uint64) {
		r.Collector(name, registry.Counter, help, func(emit func([]registry.Label, float64)) {
			emit(registry.L("device", d.name, "dir", "read"), float64(fn(bio.Read)))
			emit(registry.L("device", d.name, "dir", "write"), float64(fn(bio.Write)))
		})
	}
	dir("device_ios_total", "completed requests per direction", d.DoneIOs)
	dir("device_bytes_total", "completed bytes per direction", d.DoneBytes)
}

// RegisterMetrics adds the flash-specific state on top of the engine's:
// write-buffer credit, GC stalls, and whether a degradation episode is in
// effect.
func (d *SSD) RegisterMetrics(r *registry.Registry) {
	d.engine.RegisterMetrics(r)
	lbl := registry.L("device", d.name)
	if d.spec.BufBytes > 0 {
		r.GaugeFunc("device_write_buffer_bytes", "remaining write-buffer burst credit", lbl,
			func() float64 { return float64(d.BufferCredit()) })
	}
	r.CounterFunc("device_gc_stalls_total", "garbage-collection stalls incurred", lbl,
		func() float64 { return float64(d.gcStalls) })
	r.GaugeFunc("device_degraded", "1 while a degradation episode is in effect", lbl,
		func() float64 {
			if d.Degraded() {
				return 1
			}
			return 0
		})
}
