package device

import (
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/sim"
)

// TestBatchedCompletionSingleEvent pins the batching win itself: a burst of
// equal-cost requests submitted at one instant begins together, finishes at
// one instant, and rides a single timing-wheel event rather than one per
// request.
func TestBatchedCompletionSingleEvent(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, NullSSD(), 7)
	par := d.Parallelism()

	done := 0
	for i := 0; i < par; i++ {
		b := &bio.Bio{Op: bio.Read, Off: int64(i) * 4096, Size: 4096}
		d.Submit(b, func(b *bio.Bio) { done++ })
	}
	eng.Run()
	if done != par {
		t.Fatalf("completed %d of %d", done, par)
	}
	// One event for the whole burst: the first submit schedules it, the
	// rest chain onto it via the batch registers.
	if got := eng.EventsRun(); got != 1 {
		t.Errorf("burst of %d equal-cost requests ran %d events, want 1", par, got)
	}
}

// TestBatchedCompletionPreservesOrder checks that chained completions are
// delivered in exactly the order their requests began service — the order
// back-to-back events would have produced.
func TestBatchedCompletionPreservesOrder(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, NullSSD(), 7)
	par := d.Parallelism()

	var order []int64
	for i := 0; i < par; i++ {
		b := &bio.Bio{Op: bio.Read, Off: int64(i) * 4096, Size: 4096}
		d.Submit(b, func(b *bio.Bio) { order = append(order, b.Off/4096) })
	}
	eng.Run()
	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("completion %d was request %d; batching reordered delivery (%v)", i, got, order)
		}
	}
}

// TestBatchBrokenByInterveningEvent covers the batch registers' staleness
// guard: once some other event is scheduled at the shared finish instant,
// the pending finish event is no longer the tail of its wheel slot, so a
// later request must schedule its own event — chaining would run it ahead
// of the interloper and reorder the trace.
func TestBatchBrokenByInterveningEvent(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, NullSSD(), 7)

	var log []string
	b1 := &bio.Bio{Op: bio.Read, Off: 0, Size: 4096}
	d.Submit(b1, func(*bio.Bio) { log = append(log, "b1") })
	// NullSSD service time is deterministic, so the finish instant is
	// exactly 20µs out. Wedge an unrelated event at it.
	eng.At(eng.Now()+20_000, func() { log = append(log, "mid") })
	b2 := &bio.Bio{Op: bio.Read, Off: 4096, Size: 4096}
	d.Submit(b2, func(*bio.Bio) { log = append(log, "b2") })
	eng.Run()

	want := [...]string{"b1", "mid", "b2"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v: chained completion ran ahead of an intervening event", log, want[:])
		}
	}
	// Three separately ordered callbacks require three events.
	if got := eng.EventsRun(); got != 3 {
		t.Errorf("ran %d events, want 3", got)
	}
}

// TestBatchRegistersPerDirection checks reads and writes never share a
// chain even when their finish instants collide: the registers are indexed
// by direction.
func TestBatchRegistersPerDirection(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, NullSSD(), 7)

	done := 0
	// 4KiB on NullSSD costs the same 20µs for both directions, so all
	// four finish at one instant. Same-direction requests are adjacent, so
	// each pair shares a chain; the chains themselves stay separate.
	for i := 0; i < 4; i++ {
		op := bio.Read
		if i >= 2 {
			op = bio.Write
		}
		b := &bio.Bio{Op: op, Off: int64(i) * 4096, Size: 4096}
		d.Submit(b, func(*bio.Bio) { done++ })
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	// One chain per direction: two events, not one and not four.
	if got := eng.EventsRun(); got != 2 {
		t.Errorf("ran %d events, want 2 (one per direction)", got)
	}
}
