package device

import (
	"math"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/rng"
	"github.com/iocost-sim/iocost/internal/sim"
)

// HDDSpec parameterizes a spinning disk. Random requests pay a
// distance-dependent seek plus half a rotation on average; sequential
// streams are served through a per-stream readahead/track buffer, so
// interleaved sequential streams from different cgroups mostly hit the
// buffer and only occasionally pay a repositioning seek to refill it — as
// real drives with NCQ and readahead behave. The single actuator means
// Parallelism is always 1.
type HDDSpec struct {
	Name string
	// CapBytes is the addressable capacity, used to normalize seek
	// distance.
	CapBytes int64
	// FullSeekNS is a full-stroke seek; short seeks scale with
	// sqrt(distance) as real actuators do.
	FullSeekNS float64
	// MinSeekNS is the track-to-track seek floor.
	MinSeekNS float64
	// RPM determines rotational delay (half a revolution on average for
	// random access).
	RPM float64
	// MediaBps is the media transfer rate in bytes/second.
	MediaBps float64
	// SeqOverheadNS is the fixed per-request cost for a buffer hit.
	SeqOverheadNS float64
	// ReadaheadBytes is how much the drive buffers ahead per stream when
	// it repositions; 0 selects 512KiB.
	ReadaheadBytes int64
	// Noise is the sigma of the log-normal service multiplier.
	Noise float64

	// Merge enables elevator-style back-merging of contiguous
	// same-cgroup requests, as the kernel's schedulers do for buffered
	// sequential streams.
	Merge bool
}

// HDD is a simulated spinning disk.
type HDD struct {
	engine
	spec HDDSpec
	rnd  *rng.Source
	head int64 // current head byte position

	// Per-stream sequential detection and readahead credit.
	streams map[*cgroup.Node]*hddStream
}

type hddStream struct {
	lastEnd int64
	buffer  int64 // readahead bytes remaining
}

// NewHDD builds a spinning disk from spec.
func NewHDD(eng *sim.Engine, spec HDDSpec, seed uint64) *HDD {
	if spec.ReadaheadBytes == 0 {
		spec.ReadaheadBytes = 512 << 10
	}
	d := &HDD{spec: spec, rnd: rng.New(seed), streams: make(map[*cgroup.Node]*hddStream)}
	d.engine = engine{eng: eng, name: spec.Name, slots: 1,
		merge: spec.Merge, mergeLimit: 1 << 20}
	d.engine.service = d.serviceTime
	return d
}

// Spec returns the device parameters.
func (d *HDD) Spec() HDDSpec { return d.spec }

func (d *HDD) seekCost(to int64) float64 {
	dist := float64(to - d.head)
	if dist < 0 {
		dist = -dist
	}
	frac := dist / float64(d.spec.CapBytes)
	if frac > 1 {
		frac = 1
	}
	seek := d.spec.MinSeekNS + (d.spec.FullSeekNS-d.spec.MinSeekNS)*math.Sqrt(frac)
	rot := 0.5 * 60e9 / d.spec.RPM // average half revolution
	return seek + rot
}

func (d *HDD) serviceTime(b *bio.Bio) sim.Time {
	st := d.streams[b.CG]
	if st == nil {
		st = &hddStream{}
		d.streams[b.CG] = st
	}
	sequential := st.lastEnd == b.Off && b.Off != 0
	st.lastEnd = b.End()

	transfer := float64(b.Size) / d.spec.MediaBps * 1e9
	var ns float64
	switch {
	case sequential && st.buffer >= b.Size:
		// Track-buffer/readahead hit: no mechanical delay.
		st.buffer -= b.Size
		ns = d.spec.SeqOverheadNS + transfer
	case sequential:
		// Stream continues but the buffer is dry: reposition (unless
		// the head happens to already be there) and refill the
		// readahead buffer, paying its transfer up front.
		if b.Off != d.head {
			ns = d.seekCost(b.Off)
			ns += d.spec.SeqOverheadNS + float64(d.spec.ReadaheadBytes)/d.spec.MediaBps*1e9
			st.buffer = d.spec.ReadaheadBytes - b.Size
		} else {
			ns += d.spec.SeqOverheadNS + transfer
			st.buffer = d.spec.ReadaheadBytes
		}
	default:
		// Random access: full mechanical cost, buffer restarts.
		ns = d.seekCost(b.Off) + transfer
		st.buffer = 0
	}
	if d.spec.Noise > 0 {
		ns *= d.rnd.LogNormal(0, d.spec.Noise)
	}
	d.head = b.End()
	return sim.Time(ns)
}
