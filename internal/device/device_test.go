package device

import (
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/sim"
)

// runN pushes n identical requests through dev at full depth and returns
// total elapsed time and mean completion latency.
func runN(eng *sim.Engine, dev Device, n int, mk func(i int) *bio.Bio) (sim.Time, sim.Time) {
	var totalLat sim.Time
	done := 0
	for i := 0; i < n; i++ {
		b := mk(i)
		start := eng.Now()
		dev.Submit(b, func(b *bio.Bio) {
			totalLat += eng.Now() - start
			done++
		})
	}
	eng.Run()
	return eng.Now(), totalLat / sim.Time(n)
}

func TestSSDThroughputMatchesSpec(t *testing.T) {
	eng := sim.New()
	spec := EnterpriseSSD()
	spec.Noise = 0 // deterministic service for exact math
	d := NewSSD(eng, spec, 1)

	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	const n = 20000
	elapsed, _ := runN(eng, d, n, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: int64(i) * 1 << 20, Size: 4096, CG: cg}
	})
	iops := float64(n) / elapsed.Seconds()
	want := float64(spec.Parallelism) / spec.RandReadNS * 1e9 // ~752K
	if iops < want*0.95 || iops > want*1.05 {
		t.Errorf("4k rand read IOPS = %.0f, want ~%.0f", iops, want)
	}
}

func TestSSDSequentialFasterThanRandom(t *testing.T) {
	spec := NewerGenSSD()
	eng1 := sim.New()
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	d1 := NewSSD(eng1, spec, 1)
	elapsedRand, _ := runN(eng1, d1, 5000, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: int64(i%977) * 7 << 20, Size: 4096, CG: cg}
	})
	eng2 := sim.New()
	d2 := NewSSD(eng2, spec, 1)
	elapsedSeq, _ := runN(eng2, d2, 5000, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: 4096 * int64(i+1), Size: 4096, CG: cg}
	})
	if elapsedSeq >= elapsedRand {
		t.Errorf("sequential (%v) not faster than random (%v)", elapsedSeq, elapsedRand)
	}
}

func TestSSDWriteBufferBurstThenDegrade(t *testing.T) {
	eng := sim.New()
	spec := OlderGenSSD()
	spec.Noise = 0
	spec.GCStallProb = 0
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	// Write 4x the buffer: the first quarter is absorbed at the burst
	// rate while the final quarter crawls at the sustained drain rate.
	const chunk = 1 << 20
	n := int(4 * spec.BufBytes / chunk)
	var q1Time, q3Time sim.Time
	done := 0
	for i := 0; i < n; i++ {
		d.Submit(&bio.Bio{Op: bio.Write, Off: int64(i) * chunk, Size: chunk, CG: cg}, func(*bio.Bio) {
			done++
			switch done {
			case n / 4:
				q1Time = eng.Now()
			case 3 * n / 4:
				q3Time = eng.Now()
			}
		})
	}
	eng.Run()
	lastQuarter := eng.Now() - q3Time
	if lastQuarter < 2*q1Time {
		t.Errorf("no write-buffer degradation: first quarter %v, last quarter %v", q1Time, lastQuarter)
	}
}

func TestSSDLatencyGrowsWithQueueDepth(t *testing.T) {
	spec := OlderGenSSD()
	lat := func(depth int) sim.Time {
		eng := sim.New()
		d := NewSSD(eng, spec, 1)
		h := cgroup.NewHierarchy()
		cg := h.Root().NewChild("w", 100)
		var total sim.Time
		n := 0
		var issue func()
		issue = func() {
			start := eng.Now()
			d.Submit(&bio.Bio{Op: bio.Read, Off: int64(n) * 5 << 20, Size: 4096, CG: cg}, func(*bio.Bio) {
				total += eng.Now() - start
				n++
				if eng.Now() < 200*sim.Millisecond {
					issue()
				}
			})
		}
		for i := 0; i < depth; i++ {
			issue()
		}
		eng.Run()
		return total / sim.Time(n)
	}
	shallow, deep := lat(2), lat(64)
	if deep < 3*shallow {
		t.Errorf("latency at depth 64 (%v) should be >3x depth 2 (%v)", deep, shallow)
	}
}

func TestHDDSeekDominatesRandom(t *testing.T) {
	spec := EvalHDD()
	spec.Noise = 0
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	engR := sim.New()
	dR := NewHDD(engR, spec, 1)
	_, latRand := runN(engR, dR, 200, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: int64(i%173) * 20 << 30, Size: 4096, CG: cg}
	})
	engS := sim.New()
	dS := NewHDD(engS, spec, 1)
	_, latSeq := runN(engS, dS, 200, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: 4096 * int64(i+1), Size: 4096, CG: cg}
	})
	if latRand < 20*latSeq {
		t.Errorf("HDD random latency (%v) should dwarf sequential (%v)", latRand, latSeq)
	}
}

func TestRemoteIOPSCap(t *testing.T) {
	eng := sim.New()
	spec := EBSgp3()
	spec.Noise = 0
	d := NewRemote(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	const n = 9000 // 3 seconds at the 3000 IOPS cap
	elapsed, _ := runN(eng, d, n, func(i int) *bio.Bio {
		return &bio.Bio{Op: bio.Read, Off: int64(i) * 4096, Size: 4096, CG: cg}
	})
	iops := float64(n) / elapsed.Seconds()
	if iops > spec.IOPS*1.05 {
		t.Errorf("remote device exceeded provisioned IOPS: %.0f > %.0f", iops, spec.IOPS)
	}
	if iops < spec.IOPS*0.9 {
		t.Errorf("remote device far below provisioned IOPS under saturation: %.0f", iops)
	}
}

func TestFleetProfilesComplete(t *testing.T) {
	names := FleetSSDNames()
	if len(names) != 8 {
		t.Fatalf("expected 8 fleet SSDs, got %d", len(names))
	}
	for _, n := range names {
		spec, err := FleetSSDSpec(n)
		if err != nil {
			t.Fatalf("FleetSSDSpec(%q): %v", n, err)
		}
		if spec.Parallelism <= 0 || spec.RandReadNS <= 0 {
			t.Errorf("fleet SSD %q has invalid spec %+v", n, spec)
		}
	}
	if _, err := FleetSSDSpec("Z"); err == nil {
		t.Error("unknown device did not error")
	}
	// H must be the high-IOPS/low-latency outlier and G the low-IOPS one.
	iopsOf := func(name string) float64 {
		s, _ := FleetSSDSpec(name)
		return float64(s.Parallelism) / s.RandReadNS * 1e9
	}
	if iopsOf("H") < 2*iopsOf("A") {
		t.Error("SSD H should be markedly faster than A")
	}
	if iopsOf("G") > iopsOf("A") {
		t.Error("SSD G should be the low-IOPS device")
	}
}

func TestInFlightAccounting(t *testing.T) {
	eng := sim.New()
	spec := OlderGenSSD()
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	for i := 0; i < 20; i++ {
		d.Submit(&bio.Bio{Op: bio.Read, Off: int64(i) * 1 << 20, Size: 4096, CG: cg}, func(*bio.Bio) {})
	}
	if got := d.InFlight(); got != 20 {
		t.Errorf("InFlight = %d, want 20", got)
	}
	eng.Run()
	if got := d.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
}

func TestBioTimestampsPopulated(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, OlderGenSSD(), 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	b := &bio.Bio{Op: bio.Read, Off: 4096, Size: 4096, CG: cg}
	d.Submit(b, func(*bio.Bio) {})
	eng.Run()
	if b.Completed <= b.Dispatched {
		t.Errorf("Completed (%v) <= Dispatched (%v)", b.Completed, b.Dispatched)
	}
}

func TestMergingCoalescesContiguousWrites(t *testing.T) {
	spec := EvalHDD()
	spec.Noise = 0
	spec.Merge = true
	eng := sim.New()
	d := NewHDD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	// 256 contiguous 4KiB writes submitted back-to-back: with merging
	// they coalesce into ~1MiB requests.
	done := 0
	for i := 0; i < 256; i++ {
		d.Submit(&bio.Bio{Op: bio.Write, Off: 4096 * int64(i+1), Size: 4096, CG: cg},
			func(*bio.Bio) { done++ })
	}
	eng.Run()
	if done != 256 {
		t.Fatalf("only %d/256 merged bios completed", done)
	}
	if d.Merges == 0 {
		t.Fatal("no merges recorded for a contiguous stream")
	}
	mergedElapsed := eng.Now()

	// The same stream without merging is far slower on a spinning disk.
	spec.Merge = false
	eng2 := sim.New()
	d2 := NewHDD(eng2, spec, 1)
	for i := 0; i < 256; i++ {
		d2.Submit(&bio.Bio{Op: bio.Write, Off: 4096 * int64(i+1), Size: 4096, CG: cg}, func(*bio.Bio) {})
	}
	eng2.Run()
	if eng2.Now() < mergedElapsed {
		t.Errorf("merging did not help: merged=%v unmerged=%v", mergedElapsed, eng2.Now())
	}
}

func TestMergingRespectsCgroupBoundary(t *testing.T) {
	spec := OlderGenSSD()
	spec.Merge = true
	eng := sim.New()
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	a := h.Root().NewChild("a", 100)
	b := h.Root().NewChild("b", 100)

	// Contiguous offsets but alternating cgroups: must not merge.
	for i := 0; i < 16; i++ {
		cg := a
		if i%2 == 1 {
			cg = b
		}
		d.Submit(&bio.Bio{Op: bio.Write, Off: 4096 * int64(i+1), Size: 4096, CG: cg}, func(*bio.Bio) {})
	}
	if d.Merges != 0 {
		t.Errorf("%d merges across cgroup boundaries", d.Merges)
	}
	eng.Run()
}

func TestMergingCapsAtLimit(t *testing.T) {
	spec := OlderGenSSD()
	spec.Merge = true
	eng := sim.New()
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)
	// 1024 contiguous 4KiB writes = 4MiB; the merge limit is 1MiB, so at
	// least 4 distinct requests survive (merges <= 1020).
	for i := 0; i < 1024; i++ {
		d.Submit(&bio.Bio{Op: bio.Write, Off: 4096 * int64(i+1), Size: 4096, CG: cg}, func(*bio.Bio) {})
	}
	if d.Merges > 1020 {
		t.Errorf("merge limit not enforced: %d merges", d.Merges)
	}
	eng.Run()
}

func TestInjectDegradation(t *testing.T) {
	eng := sim.New()
	spec := OlderGenSSD()
	spec.Noise = 0
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	elapsed := func(n int) sim.Time {
		start := eng.Now()
		for i := 0; i < n; i++ {
			d.Submit(&bio.Bio{Op: bio.Read, Off: int64(i) * 5 << 20, Size: 4096, CG: cg}, func(*bio.Bio) {})
		}
		eng.Run()
		return eng.Now() - start
	}

	healthy := elapsed(64)
	d.InjectDegradation(3, sim.Second)
	if !d.Degraded() {
		t.Fatal("not degraded after injection")
	}
	degraded := elapsed(64)
	if degraded < 2*healthy {
		t.Errorf("degradation had no effect: healthy=%v degraded=%v", healthy, degraded)
	}
	// The episode expires.
	eng.RunUntil(eng.Now() + 2*sim.Second)
	if d.Degraded() {
		t.Error("degradation did not expire")
	}
	recovered := elapsed(64)
	if recovered > healthy*3/2 {
		t.Errorf("service did not recover: %v vs healthy %v", recovered, healthy)
	}
}
