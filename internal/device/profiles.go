package device

import (
	"fmt"
	"sort"

	"github.com/iocost-sim/iocost/internal/sim"
)

// This file defines the concrete device population used by the experiments:
// the eight fleet SSD types A-H of Figure 3, the three evaluation SSDs
// (older-generation commercial, newer-generation commercial, enterprise),
// the spinning disk of Figure 12, and the four remote-store configurations
// of Figure 17. Parameters are chosen to land each device in the qualitative
// region the paper describes (e.g. SSD H: high IOPS at low latency; SSD G:
// low IOPS at relatively low latency; SSD A: moderate IOPS, higher latency).

// Fleet SSD profiles, Figure 3.
var fleetSSDs = map[string]SSDSpec{
	"A": fleetSSD("A", 32, 213_000, 150_000, 1.6e9, 130_000, 900e6, 512<<20, 350e6),
	"B": fleetSSD("B", 32, 160_000, 112_000, 1.8e9, 115_000, 1.0e9, 512<<20, 420e6),
	"C": fleetSSD("C", 48, 160_000, 112_000, 2.2e9, 140_000, 1.4e9, 768<<20, 600e6),
	"D": fleetSSD("D", 16, 160_000, 112_000, 1.1e9, 110_000, 600e6, 256<<20, 240e6),
	"E": fleetSSD("E", 48, 120_000, 84_000, 2.6e9, 120_000, 1.6e9, 1<<30, 800e6),
	"F": fleetSSD("F", 32, 128_000, 90_000, 2.0e9, 105_000, 1.2e9, 512<<20, 500e6),
	"G": fleetSSD("G", 8, 133_000, 93_000, 700e6, 95_000, 350e6, 128<<20, 140e6),
	"H": fleetSSD("H", 64, 80_000, 70_000, 3.4e9, 100_000, 2.2e9, 2<<30, 1.3e9),
}

func fleetSSD(name string, par int, rr, sr float64, rbps, wr, wbps float64, buf int64, sustained float64) SSDSpec {
	return SSDSpec{
		Name:         "ssd-" + name,
		Parallelism:  par,
		RandReadNS:   rr,
		SeqReadNS:    sr,
		RandWriteNS:  wr * 1.3,
		SeqWriteNS:   wr,
		ReadBps:      rbps,
		WriteBps:     wbps,
		BufBytes:     buf,
		SustainedWBp: sustained,
		GCStallProb:  0.02,
		GCStallNS:    2e6,
		Noise:        0.18,
	}
}

// FleetSSDNames returns the Figure 3 device names in order.
func FleetSSDNames() []string {
	names := make([]string, 0, len(fleetSSDs))
	for n := range fleetSSDs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FleetSSDSpec returns the spec for one of the Figure 3 devices (A-H).
func FleetSSDSpec(name string) (SSDSpec, error) {
	s, ok := fleetSSDs[name]
	if !ok {
		return SSDSpec{}, fmt.Errorf("device: unknown fleet SSD %q", name)
	}
	return s, nil
}

// The three evaluation SSDs of §4.

// OlderGenSSD is the older-generation commercial SSD: low latency but little
// internal parallelism, so it has the highest demands on IO control.
func OlderGenSSD() SSDSpec {
	return SSDSpec{
		Name:        "older-gen-ssd",
		Parallelism: 8,
		RandReadNS:  90_000, SeqReadNS: 60_000,
		RandWriteNS: 80_000, SeqWriteNS: 65_000,
		ReadBps: 520e6, WriteBps: 420e6,
		BufBytes: 192 << 20, SustainedWBp: 130e6,
		GCStallProb: 0.04, GCStallNS: 3e6,
		Noise: 0.20,
	}
}

// NewerGenSSD is the newer-generation commercial SSD used for the vrate
// experiment (Figure 13) with a p90 read-latency QoS of 250us.
func NewerGenSSD() SSDSpec {
	return SSDSpec{
		Name:        "newer-gen-ssd",
		Parallelism: 32,
		RandReadNS:  128_000, SeqReadNS: 85_000,
		RandWriteNS: 120_000, SeqWriteNS: 95_000,
		ReadBps: 1.3e9, WriteBps: 1.1e9,
		BufBytes: 512 << 20, SustainedWBp: 430e6,
		GCStallProb: 0.03, GCStallNS: 2.5e6,
		Noise: 0.18,
	}
}

// NullSSD is the simulator's null_blk analog: a deterministic
// fixed-latency device with no noise, write buffering, or GC behaviour.
// It exists for whole-stack benchmarking — with device-model randomness
// out of the picture, bios/sec through a null device measures the
// software overhead of the bio path itself (what BenchmarkMachine*Null
// tracks), and identical seeds trivially reproduce identical schedules.
func NullSSD() SSDSpec {
	return SSDSpec{
		Name:        "null-ssd",
		Parallelism: 32,
		RandReadNS:  20_000, SeqReadNS: 20_000,
		RandWriteNS: 20_000, SeqWriteNS: 20_000,
		ReadBps: 8e9, WriteBps: 8e9,
		// No buffer model: sustained equals peak, which keeps derived
		// cost models (IdealSSDParams) well-formed.
		SustainedWBp: 8e9,
	}
}

// EnterpriseSSD is the high-end enterprise device with ~750K max read IOPS
// used for the overhead (Figure 9) and ZooKeeper (Figure 16) experiments.
func EnterpriseSSD() SSDSpec {
	return SSDSpec{
		Name:        "enterprise-ssd",
		Parallelism: 64,
		RandReadNS:  85_000, SeqReadNS: 55_000,
		RandWriteNS: 110_000, SeqWriteNS: 90_000,
		ReadBps: 3.2e9, WriteBps: 2.6e9,
		BufBytes: 4 << 30, SustainedWBp: 1.9e9,
		GCStallProb: 0.01, GCStallNS: 1.5e6,
		Noise: 0.15,
	}
}

// EvalHDD is the spinning disk of Figure 12.
func EvalHDD() HDDSpec {
	return HDDSpec{
		Name:          "spinning-disk",
		CapBytes:      4 << 40,
		FullSeekNS:    16e6,
		MinSeekNS:     500_000,
		RPM:           7200,
		MediaBps:      180e6,
		SeqOverheadNS: 30_000,
		Noise:         0.10,
	}
}

// Remote-store configurations of Figure 17.

// EBSgp3 models an AWS EBS gp3 volume provisioned at 3000 IOPS.
func EBSgp3() RemoteSpec {
	return RemoteSpec{
		Name: "ebs-gp3-3000iops", RTTNS: 600_000, WriteExtraNS: 200_000,
		IOPS: 3000, Bps: 125e6, Parallelism: 32, Noise: 0.25,
	}
}

// EBSio2 models an AWS EBS io2 volume provisioned at 64000 IOPS.
func EBSio2() RemoteSpec {
	return RemoteSpec{
		Name: "ebs-io2-64000iops", RTTNS: 250_000, WriteExtraNS: 100_000,
		IOPS: 64000, Bps: 1e9, Parallelism: 64, Noise: 0.20,
	}
}

// GCPBalanced models a Google Cloud Persistent Disk balanced volume.
func GCPBalanced() RemoteSpec {
	return RemoteSpec{
		Name: "gcp-pd-balanced", RTTNS: 800_000, WriteExtraNS: 250_000,
		IOPS: 6000, Bps: 240e6, Parallelism: 32, Noise: 0.25,
	}
}

// GCPSSD models a Google Cloud Persistent Disk SSD volume.
func GCPSSD() RemoteSpec {
	return RemoteSpec{
		Name: "gcp-pd-ssd", RTTNS: 400_000, WriteExtraNS: 150_000,
		IOPS: 30000, Bps: 480e6, Parallelism: 64, Noise: 0.20,
	}
}

// New4kLatencyHint returns the unloaded 4KiB random-read latency implied by a
// spec, useful for sizing QoS targets in tests and examples.
func New4kLatencyHint(spec SSDSpec) sim.Time {
	ns := spec.RandReadNS
	if bw := 4096 * float64(spec.Parallelism) / spec.ReadBps * 1e9; bw > ns {
		ns = bw
	}
	return sim.Time(ns)
}
