package device

// Edge-case tests for the device models: degenerate request shapes and the
// boundaries of the write-buffer, GC-stall and token-bucket mechanisms.
// These are the corners the scenario fuzzer (internal/simfuzz) explores
// randomly; here each one is pinned down in isolation.

import (
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/sim"
)

// edgeSpec is a deterministic single-channel SSD used by the boundary tests:
// no noise, no GC, 1 MiB write buffer draining at 10 MB/s.
func edgeSpec() SSDSpec {
	return SSDSpec{
		Name:         "edge",
		Parallelism:  1,
		RandReadNS:   80_000,
		SeqReadNS:    40_000,
		RandWriteNS:  20_000,
		SeqWriteNS:   20_000,
		ReadBps:      2e9,
		WriteBps:     2e9,
		BufBytes:     1 << 20,
		SustainedWBp: 10e6,
	}
}

// TestZeroLengthBio: a zero-byte request is legal (the kernel issues them for
// flushes and barriers); it must complete after exactly the base per-op cost,
// and must not consume write-buffer credit.
func TestZeroLengthBio(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, edgeSpec(), 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	var readLat, writeLat sim.Time
	d.Submit(&bio.Bio{Op: bio.Read, Off: 1 << 20, Size: 0, CG: cg}, func(b *bio.Bio) {
		readLat = b.Completed - b.Dispatched
	})
	d.Submit(&bio.Bio{Op: bio.Write, Off: 8 << 20, Size: 0, CG: cg}, func(b *bio.Bio) {
		writeLat = b.Completed - b.Dispatched
	})
	eng.Run()

	if want := sim.Time(edgeSpec().RandReadNS); readLat != want {
		t.Errorf("zero-length read latency = %v, want base cost %v", readLat, want)
	}
	if want := sim.Time(edgeSpec().RandWriteNS); writeLat != want {
		t.Errorf("zero-length write latency = %v, want base cost %v", writeLat, want)
	}
	if credit := d.BufferCredit(); credit != edgeSpec().BufBytes {
		t.Errorf("zero-length write consumed buffer credit: %d left of %d",
			credit, edgeSpec().BufBytes)
	}
	if d.InFlight() != 0 {
		t.Errorf("in-flight count %d after drain, want 0", d.InFlight())
	}
}

// TestQueueDepthOneServesFIFO: with a single channel the device must serve
// same-direction requests strictly in submission order, one at a time.
func TestQueueDepthOneServesFIFO(t *testing.T) {
	eng := sim.New()
	d := NewSSD(eng, edgeSpec(), 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	const n = 16
	var order []int
	var lastEnd sim.Time
	overlap := false
	for i := 0; i < n; i++ {
		i := i
		// Non-contiguous offsets so nothing can merge.
		d.Submit(&bio.Bio{Op: bio.Read, Off: int64(i) * (8 << 20), Size: 4096, CG: cg},
			func(b *bio.Bio) {
				order = append(order, i)
				if b.Dispatched < lastEnd {
					overlap = true
				}
				lastEnd = b.Completed
			})
	}
	eng.Run()

	if len(order) != n {
		t.Fatalf("completed %d of %d bios", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("completion order %v is not FIFO", order)
		}
	}
	if overlap {
		t.Error("two requests were in service at once on a depth-1 device")
	}
}

// TestWriteBufferExhaustionBoundary: a write that exactly fits the remaining
// buffer credit is absorbed at full speed; one byte more spills to the
// sustained drain rate. The boundary is b.Size <= credit, not <.
func TestWriteBufferExhaustionBoundary(t *testing.T) {
	spec := edgeSpec()
	run := func(size int64) sim.Time {
		eng := sim.New()
		d := NewSSD(eng, spec, 1)
		h := cgroup.NewHierarchy()
		cg := h.Root().NewChild("w", 100)
		var lat sim.Time
		d.Submit(&bio.Bio{Op: bio.Write, Off: 0, Size: size, CG: cg}, func(b *bio.Bio) {
			lat = b.Completed - b.Dispatched
		})
		eng.Run()
		return lat
	}

	fast := run(spec.BufBytes)     // exactly drains the buffer
	slow := run(spec.BufBytes + 1) // one byte over

	// Buffered: 1 MiB at WriteBps (2 GB/s) is ~0.5 ms. Spilled: the whole
	// transfer proceeds at SustainedWBp (10 MB/s), ~105 ms.
	if fast > sim.Millisecond {
		t.Errorf("exact-fit write took %v, want buffered speed (<1ms)", fast)
	}
	if slow < 50*sim.Millisecond {
		t.Errorf("one-byte-over write took %v, want sustained speed (>50ms)", slow)
	}
}

// TestGCStallReentry: once the buffer is exhausted, every subsequent
// unbuffered write re-enters the garbage-collection path and pays the stall
// again — the stall is per-request, not a one-time penalty.
func TestGCStallReentry(t *testing.T) {
	spec := edgeSpec()
	spec.Parallelism = 4 // all four writes begin at t=0: no refill between them
	spec.BufBytes = 4096 // exactly one write of credit
	spec.SustainedWBp = 1e9
	spec.GCStallProb = 1
	spec.GCStallNS = 5e6

	eng := sim.New()
	d := NewSSD(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	lats := make([]sim.Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		d.Submit(&bio.Bio{Op: bio.Write, Off: int64(i) * (8 << 20), Size: 4096, CG: cg},
			func(b *bio.Bio) { lats[i] = b.Completed - b.Dispatched })
	}
	eng.Run()

	// Write 0 drains the buffer at full speed; writes 1-3 are each
	// unbuffered and each must draw a fresh Pareto stall >= GCStallNS.
	if lats[0] >= sim.Time(spec.GCStallNS) {
		t.Errorf("buffered write stalled: %v", lats[0])
	}
	for i, lat := range lats[1:] {
		if lat < sim.Time(spec.GCStallNS) {
			t.Errorf("unbuffered write %d finished in %v, want >= GC stall floor %v",
				i+1, lat, sim.Time(spec.GCStallNS))
		}
	}
}

// TestRemoteTokenBucketSpacing: at the provisioned IOPS cap the token bucket
// must space dispatches exactly 1/IOPS apart even when the burst arrives all
// at once and the backend has idle parallelism — this is the saturation
// behaviour cloud block stores exhibit and the cap the remote fuzz scenarios
// lean on.
func TestRemoteTokenBucketSpacing(t *testing.T) {
	eng := sim.New()
	spec := RemoteSpec{
		Name:        "tok",
		RTTNS:       500_000,
		IOPS:        1000,
		Parallelism: 8,
	}
	d := NewRemote(eng, spec, 1)
	h := cgroup.NewHierarchy()
	cg := h.Root().NewChild("w", 100)

	const n = 8
	bios := make([]*bio.Bio, n)
	for i := 0; i < n; i++ {
		bios[i] = &bio.Bio{Op: bio.Read, Off: int64(i) * (8 << 20), Size: 4096, CG: cg}
		d.Submit(bios[i], func(*bio.Bio) {})
	}
	eng.Run()

	gap := sim.Time(1e9 / spec.IOPS)
	for i, b := range bios {
		if want := sim.Time(i) * gap; b.Dispatched != want {
			t.Errorf("bio %d dispatched at %v, want token-bucket slot %v", i, b.Dispatched, want)
		}
		if want := b.Dispatched + sim.Time(spec.RTTNS); b.Completed != want {
			t.Errorf("bio %d completed at %v, want %v", i, b.Completed, want)
		}
	}
}
