package ring

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 1000; i++ {
		q.Push(i)
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
}

func TestPeek(t *testing.T) {
	var q Queue[string]
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty returned ok")
	}
	q.Push("a")
	q.Push("b")
	if v, _ := q.Peek(); v != "a" {
		t.Errorf("Peek = %q", v)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	q.Pop()
	if v, _ := q.Peek(); v != "b" {
		t.Errorf("Peek after pop = %q", v)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Property: any interleaving of pushes and pops behaves like a FIFO.
	prop := func(ops []bool) bool {
		var q Queue[int]
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				q.Push(next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompactionReleasesMemory(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10000; i++ {
		q.Push(i)
	}
	for i := 0; i < 9990; i++ {
		q.Pop()
	}
	// After draining most elements, the backing slice must have been
	// compacted well below its peak.
	if len(q.items) > 6000 {
		t.Errorf("backing slice still %d long after compaction", len(q.items))
	}
	// Remaining elements intact.
	for i := 9990; i < 10000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("post-compaction Pop = %d,%v want %d", v, ok, i)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%3 == 0 {
			q.Pop()
		}
	}
}
