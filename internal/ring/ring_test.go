package ring

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 1000; i++ {
		q.Push(i)
	}
	for i := 0; i < 1000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
}

func TestPeek(t *testing.T) {
	var q Queue[string]
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty returned ok")
	}
	q.Push("a")
	q.Push("b")
	if v, _ := q.Peek(); v != "a" {
		t.Errorf("Peek = %q", v)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d", q.Len())
	}
	q.Pop()
	if v, _ := q.Peek(); v != "b" {
		t.Errorf("Peek after pop = %q", v)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Property: any interleaving of pushes and pops behaves like a FIFO.
	prop := func(ops []bool) bool {
		var q Queue[int]
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				q.Push(next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWrapAround(t *testing.T) {
	// A steady push/pop cadence at constant depth must wrap the circular
	// buffer many times without growing it.
	var q Queue[int]
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	capAfterFill := len(q.buf)
	next := 8
	for i := 0; i < 10000; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
		q.Push(next)
		next++
	}
	if len(q.buf) != capAfterFill {
		t.Errorf("buffer grew from %d to %d at constant depth", capAfterFill, len(q.buf))
	}
	if v, _ := q.Peek(); v != 10000 {
		t.Errorf("Peek = %d want 10000", v)
	}
	if tl := q.PeekTail(); tl == nil || *tl != next-1 {
		t.Errorf("PeekTail = %v want %d", tl, next-1)
	}
	for i := 0; i < q.Len(); i++ {
		if *q.At(i) != 10000+i {
			t.Errorf("At(%d) = %d want %d", i, *q.At(i), 10000+i)
		}
	}
}

func TestPopReleasesReferences(t *testing.T) {
	// Popped slots must be zeroed so the queue does not pin dead objects.
	var q Queue[*int]
	for i := 0; i < 4; i++ {
		v := i
		q.Push(&v)
	}
	for i := 0; i < 4; i++ {
		q.Pop()
	}
	for i, p := range q.buf {
		if p != nil {
			t.Errorf("buf[%d] still references %d after pop", i, *p)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	for i := 0; i < b.N; i++ {
		q.Push(i)
		if i%3 == 0 {
			q.Pop()
		}
	}
}
