// Package ring provides a minimal FIFO queue with O(1) amortized push and
// pop. Controllers can accumulate very large backlogs when throttling
// overloaded workloads, so popping must not shift the remaining elements.
package ring

// Queue is a FIFO. The zero value is ready to use.
type Queue[T any] struct {
	items []T
	head  int
}

// Push appends v.
func (q *Queue[T]) Push(v T) { q.items = append(q.items, v) }

// Pop removes and returns the oldest element; ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.head >= len(q.items) {
		return v, false
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release references
	q.head++
	// Compact once the dead prefix dominates, keeping pop amortized O(1)
	// without unbounded memory retention.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = zero
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.head >= len(q.items) {
		return v, false
	}
	return q.items[q.head], true
}

// PeekTail returns a pointer to the newest element, or nil when empty. The
// pointer is invalidated by the next Push or Pop.
func (q *Queue[T]) PeekTail() *T {
	if q.head >= len(q.items) {
		return nil
	}
	return &q.items[len(q.items)-1]
}

// At returns a pointer to the i-th oldest element (0 = head). The pointer
// is invalidated by the next Push or Pop. It panics when out of range.
func (q *Queue[T]) At(i int) *T {
	if i < 0 || q.head+i >= len(q.items) {
		panic("ring: index out of range")
	}
	return &q.items[q.head+i]
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Empty reports whether the queue has no elements.
func (q *Queue[T]) Empty() bool { return q.Len() == 0 }
