// Package ring provides a minimal FIFO queue with O(1) push and pop.
// Controllers can accumulate very large backlogs when throttling overloaded
// workloads, so popping must not shift the remaining elements.
package ring

// Queue is a FIFO backed by a power-of-two circular buffer, so Push and Pop
// are branch-light index arithmetic with no periodic compaction. The zero
// value is ready to use.
type Queue[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of queued elements
}

// grow doubles the buffer (seeding at 8), unwrapping the live elements to
// the front so head arithmetic stays a simple mask.
func (q *Queue[T]) grow() {
	c := len(q.buf) * 2
	if c == 0 {
		c = 8
	}
	nb := make([]T, c)
	m := copy(nb, q.buf[q.head:])
	copy(nb[m:], q.buf[:q.head])
	q.buf = nb
	q.head = 0
}

// Push appends v.
func (q *Queue[T]) Push(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
}

// Pop removes and returns the oldest element; ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// PeekTail returns a pointer to the newest element, or nil when empty. The
// pointer is invalidated by the next Push or Pop.
func (q *Queue[T]) PeekTail() *T {
	if q.n == 0 {
		return nil
	}
	return &q.buf[(q.head+q.n-1)&(len(q.buf)-1)]
}

// At returns a pointer to the i-th oldest element (0 = head). The pointer
// is invalidated by the next Push or Pop. It panics when out of range.
func (q *Queue[T]) At(i int) *T {
	if i < 0 || i >= q.n {
		panic("ring: index out of range")
	}
	return &q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Empty reports whether the queue has no elements.
func (q *Queue[T]) Empty() bool { return q.n == 0 }
