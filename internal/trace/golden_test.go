package trace_test

// Golden-file pin of the version-1 binary trace format: the fixture under
// testdata was produced by Encode and must decode — and re-encode
// byte-identically — forever. A change to the wire format must bump
// trace.Version and add a new fixture, never mutate this one.
// Regenerate (after a deliberate version bump) with:
//
//	UPDATE_TRACE_GOLDEN=1 go test ./internal/trace -run TestGoldenBinaryFormat

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/iocost-sim/iocost/internal/trace"
)

// goldenTrace is a small hand-built trace exercising every event kind,
// delta-negative timestamps (retroactive events), NoCG and large values.
func goldenTrace() *trace.Trace {
	return &trace.Trace{
		CGroups: []string{"/rt", "/be/batch"},
		Dropped: 7,
		Events: []trace.Event{
			{At: 0, Kind: trace.KindPeriod, CG: trace.NoCG, Aux: 1_000_000},
			{At: 1000, Kind: trace.KindSubmit, CG: 0, Op: 0, Flags: 1, Off: 4096, Size: 8192, Seq: 1},
			{At: 1500, Kind: trace.KindSubmit, CG: 1, Op: 1, Flags: 6, Off: 1 << 40, Size: 1 << 20, Seq: 2},
			{At: 1000, Kind: trace.KindThrottleBegin, CG: 0, Flags: 1, Off: 4096, Size: 8192, Seq: 1},
			{At: 2500, Kind: trace.KindThrottleEnd, CG: 0, Flags: 1, Off: 4096, Size: 8192, Aux: 1500, Seq: 1},
			{At: 2500, Kind: trace.KindIssue, CG: 0, Flags: 1, Off: 4096, Size: 8192, Aux: 1500, Seq: 1},
			{At: 2600, Kind: trace.KindDispatch, CG: 0, Flags: 1, Off: 4096, Size: 8192, Seq: 1},
			{At: 3000, Kind: trace.KindVrate, CG: trace.NoCG, Aux: 750_000},
			{At: 3100, Kind: trace.KindDonation, CG: trace.NoCG, Aux: 2},
			{At: 3200, Kind: trace.KindDebt, CG: 1, Aux: 5_000_000},
			{At: 2600, Kind: trace.KindDeviceStart, CG: 0, Flags: 1, Off: 4096, Size: 8192, Seq: 1},
			{At: 4000, Kind: trace.KindComplete, CG: 0, Flags: 1, Off: 4096, Size: 8192, Aux: 3000, Seq: 1},
		},
	}
}

func TestGoldenBinaryFormat(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.trace")
	want := goldenTrace()
	enc := trace.Encode(want)

	if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	fixture, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with UPDATE_TRACE_GOLDEN=1 after a version bump): %v", err)
	}
	if fixture[4] != trace.Version {
		t.Fatalf("fixture version byte = %d, want %d", fixture[4], trace.Version)
	}
	if !bytes.Equal(enc, fixture) {
		t.Errorf("Encode no longer matches the pinned v%d format (%d vs %d bytes); bump trace.Version for wire changes", trace.Version, len(enc), len(fixture))
	}
	got, err := trace.Decode(fixture)
	if err != nil {
		t.Fatalf("Decode(fixture): %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("fixture no longer decodes to the pinned events")
	}
}
