package trace

// Binary trace format, version 1. Layout:
//
//	magic   "IOCT" (4 bytes)
//	version 0x01   (1 byte)
//	uvarint dropped-event count
//	uvarint cgroup count, then per cgroup: uvarint length + path bytes
//	uvarint event count, then per event:
//	    kind    (1 byte)
//	    svarint At delta from the previous event's At (first event: from 0)
//	    svarint CG (-1 for unattributed)
//	    op      (1 byte)
//	    uvarint Flags
//	    svarint Off
//	    svarint Size
//	    svarint Aux
//	    uvarint Seq
//
// Timestamps are delta-coded in emission order, where they are
// near-monotonic, so most events cost a handful of bytes. The format has
// no floats and no map-order dependence: identical runs encode to
// byte-identical files.

import (
	"encoding/binary"
	"fmt"
	"os"

	"github.com/iocost-sim/iocost/internal/sim"
)

// Magic prefixes every trace file.
const Magic = "IOCT"

// Version is the current format version byte.
const Version = 1

// maxStringLen bounds decoded string-table entries, guarding against
// corrupt or hostile files.
const maxStringLen = 1 << 16

// Encode serializes t into the version-1 binary format.
func Encode(t *Trace) []byte {
	// Size guess: header + paths + ~12 bytes per event.
	out := make([]byte, 0, 64+16*len(t.CGroups)+12*len(t.Events))
	out = append(out, Magic...)
	out = append(out, Version)
	out = binary.AppendUvarint(out, t.Dropped)
	out = binary.AppendUvarint(out, uint64(len(t.CGroups)))
	for _, p := range t.CGroups {
		out = binary.AppendUvarint(out, uint64(len(p)))
		out = append(out, p...)
	}
	out = binary.AppendUvarint(out, uint64(len(t.Events)))
	var prev sim.Time
	for i := range t.Events {
		ev := &t.Events[i]
		out = append(out, byte(ev.Kind))
		out = binary.AppendVarint(out, int64(ev.At-prev))
		prev = ev.At
		out = binary.AppendVarint(out, int64(ev.CG))
		out = append(out, ev.Op)
		out = binary.AppendUvarint(out, uint64(ev.Flags))
		out = binary.AppendVarint(out, ev.Off)
		out = binary.AppendVarint(out, ev.Size)
		out = binary.AppendVarint(out, ev.Aux)
		out = binary.AppendUvarint(out, ev.Seq)
	}
	return out
}

// decoder walks an encoded buffer, accumulating the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("trace: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad svarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen || d.off+int(n) > len(d.buf) {
		d.fail("string length %d out of range", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Decode parses a version-1 binary trace.
func Decode(data []byte) (*Trace, error) {
	d := &decoder{buf: data}
	if len(data) < len(Magic)+1 || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("trace: bad magic (not a trace file)")
	}
	d.off = len(Magic)
	if v := d.byte(); v != Version {
		return nil, fmt.Errorf("trace: unsupported format version %d (have %d)", v, Version)
	}
	t := &Trace{Dropped: d.uvarint()}
	ncg := d.uvarint()
	if d.err == nil && ncg > uint64(len(data)) {
		d.fail("cgroup count %d out of range", ncg)
	}
	for i := uint64(0); i < ncg && d.err == nil; i++ {
		t.CGroups = append(t.CGroups, d.str())
	}
	nev := d.uvarint()
	// Each event is at least 9 bytes; reject counts the buffer can't hold
	// before allocating.
	if d.err == nil && nev > uint64(len(data))/9+1 {
		d.fail("event count %d out of range", nev)
	}
	if d.err != nil {
		return nil, d.err
	}
	t.Events = make([]Event, 0, nev)
	var prev sim.Time
	for i := uint64(0); i < nev && d.err == nil; i++ {
		var ev Event
		ev.Kind = Kind(d.byte())
		if ev.Kind == 0 || ev.Kind > kindMax {
			d.fail("unknown event kind %d", ev.Kind)
			break
		}
		ev.At = prev + sim.Time(d.svarint())
		prev = ev.At
		ev.CG = int32(d.svarint())
		if ev.CG != NoCG && (ev.CG < 0 || int(ev.CG) >= len(t.CGroups)) {
			d.fail("cgroup id %d out of range", ev.CG)
			break
		}
		ev.Op = d.byte()
		ev.Flags = uint16(d.uvarint())
		ev.Off = d.svarint()
		ev.Size = d.svarint()
		ev.Aux = d.svarint()
		ev.Seq = d.uvarint()
		if d.err == nil {
			t.Events = append(t.Events, ev)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("trace: %d trailing bytes after %d events", len(data)-d.off, nev)
	}
	return t, nil
}

// WriteFile encodes t to path.
func WriteFile(path string, t *Trace) error {
	return os.WriteFile(path, Encode(t), 0o644)
}

// ReadFile loads and decodes the trace at path.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
