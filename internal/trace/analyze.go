package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/metrics"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/stats"
	"github.com/iocost-sim/iocost/internal/workload"
)

// CGSummary aggregates one cgroup's activity over a trace.
type CGSummary struct {
	Path string

	Submitted uint64
	Completed uint64
	ReadBytes int64
	WriteBytes int64

	// Throttled counts bios the controller held; ThrottleNS is the summed
	// hold time.
	Throttled  uint64
	ThrottleNS sim.Time

	// Errors, Timeouts and Retries count failure events: error
	// completions, block-layer timeouts, and requeued attempts.
	Errors   uint64
	Timeouts uint64
	Retries  uint64

	// Wait, Device and Total are latency distributions: controller hold,
	// dispatch-to-complete, and submit-to-complete respectively.
	Wait   *stats.Histogram
	Device *stats.Histogram
	Total  *stats.Histogram

	// SomeNS/FullNS are the replayed PSI stall integrals for this scope.
	SomeNS sim.Time
	FullNS sim.Time
}

// Analysis is the result of replaying a trace through the analysis passes.
type Analysis struct {
	// Span is the time range covered by the trace.
	Span sim.Time
	// Events and Dropped echo the trace size.
	Events  int
	Dropped uint64

	// System aggregates all cgroups; ByCGroup is sorted by path.
	System   *CGSummary
	ByCGroup []*CGSummary

	// QueueDepth is the device in-flight depth over time; WaitDepth is the
	// number of bios submitted but not yet dispatched.
	QueueDepth *metrics.Timeline
	WaitDepth  *metrics.Timeline

	// Vrate is the controller's vrate over time (fraction of nominal, from
	// period ticks and re-bases). Periods, Donations and DebtEvents count
	// controller events; MaxDebtNS is the largest debt seen.
	Vrate      *stats.Series
	Periods    uint64
	Donations  uint64
	DebtEvents uint64
	MaxDebtNS  sim.Time
}

func newCGSummary(path string) *CGSummary {
	return &CGSummary{
		Path:   path,
		Wait:   stats.NewHistogram(),
		Device: stats.NewHistogram(),
		Total:  stats.NewHistogram(),
	}
}

// Analyze replays t through the analysis passes: per-cgroup latency
// distributions, throttle-wait attribution, queue-depth timelines and PSI
// pressure reconstruction.
func Analyze(t *Trace) *Analysis {
	a := &Analysis{
		Span:       t.Span(),
		Events:     len(t.Events),
		Dropped:    t.Dropped,
		System:     newCGSummary("<system>"),
		QueueDepth: metrics.NewTimeline(0, 0),
		WaitDepth:  metrics.NewTimeline(0, 0),
		Vrate:      &stats.Series{Name: "vrate"},
	}
	byID := make(map[int32]*CGSummary)
	cgOf := func(id int32) *CGSummary {
		if id == NoCG {
			return a.System
		}
		s := byID[id]
		if s == nil {
			s = newCGSummary(t.CGPath(id))
			byID[id] = s
		}
		return s
	}

	// Pressure reconstruction state, keyed like the summaries.
	sysP := &metrics.Pressure{}
	cgP := make(map[int32]*metrics.Pressure)
	pOf := func(id int32) *metrics.Pressure {
		p := cgP[id]
		if p == nil {
			p = &metrics.Pressure{}
			cgP[id] = p
		}
		return p
	}

	var lastStart sim.Time // At of the pending DeviceStart, keyed by Seq
	var lastStartSeq uint64
	var haveStart bool
	var qdepth, wdepth int
	var end sim.Time

	for i := range t.Events {
		ev := &t.Events[i]
		if ev.At > end {
			end = ev.At
		}
		switch ev.Kind {
		case KindSubmit:
			s := cgOf(ev.CG)
			a.System.Submitted++
			if s != a.System {
				s.Submitted++
			}
			wdepth++
			a.WaitDepth.Record(ev.At, float64(wdepth))
			sysP.Adjust(ev.At, +1, 0)
			if ev.CG != NoCG {
				pOf(ev.CG).Adjust(ev.At, +1, 0)
			}

		case KindThrottleEnd:
			s := cgOf(ev.CG)
			a.System.Throttled++
			a.System.ThrottleNS += sim.Time(ev.Aux)
			if s != a.System {
				s.Throttled++
				s.ThrottleNS += sim.Time(ev.Aux)
			}

		case KindIssue:
			s := cgOf(ev.CG)
			a.System.Wait.Observe(ev.Aux)
			if s != a.System {
				s.Wait.Observe(ev.Aux)
			}

		case KindDispatch:
			qdepth++
			if wdepth > 0 {
				wdepth--
			}
			a.QueueDepth.Record(ev.At, float64(qdepth))
			a.WaitDepth.Record(ev.At, float64(wdepth))
			sysP.Adjust(ev.At, -1, +1)
			if ev.CG != NoCG {
				pOf(ev.CG).Adjust(ev.At, -1, +1)
			}

		case KindDeviceStart:
			lastStart, lastStartSeq, haveStart = ev.At, ev.Seq, true

		case KindComplete:
			s := cgOf(ev.CG)
			a.System.Completed++
			if s != a.System {
				s.Completed++
			}
			bytes := ev.Size
			if bio.Op(ev.Op) == bio.Read {
				a.System.ReadBytes += bytes
				if s != a.System {
					s.ReadBytes += bytes
				}
			} else {
				a.System.WriteBytes += bytes
				if s != a.System {
					s.WriteBytes += bytes
				}
			}
			a.System.Total.Observe(ev.Aux)
			if s != a.System {
				s.Total.Observe(ev.Aux)
			}
			if haveStart && lastStartSeq == ev.Seq {
				dev := int64(ev.At - lastStart)
				a.System.Device.Observe(dev)
				if s != a.System {
					s.Device.Observe(dev)
				}
			}
			haveStart = false
			if qdepth > 0 {
				qdepth--
			}
			a.QueueDepth.Record(ev.At, float64(qdepth))
			sysP.Adjust(ev.At, 0, -1)
			if ev.CG != NoCG {
				pOf(ev.CG).Adjust(ev.At, 0, -1)
			}

		case KindError:
			s := cgOf(ev.CG)
			a.System.Errors++
			if s != a.System {
				s.Errors++
			}
		case KindTimeout:
			s := cgOf(ev.CG)
			a.System.Timeouts++
			if s != a.System {
				s.Timeouts++
			}
		case KindRetry:
			s := cgOf(ev.CG)
			a.System.Retries++
			if s != a.System {
				s.Retries++
			}

		case KindVrate, KindPeriod:
			a.Vrate.Add(ev.At.Seconds(), float64(ev.Aux)/1e6)
			if ev.Kind == KindPeriod {
				a.Periods++
			}
		case KindDonation:
			a.Donations++
		case KindDebt:
			a.DebtEvents++
			if d := sim.Time(ev.Aux); d > a.MaxDebtNS {
				a.MaxDebtNS = d
			}
		}
	}

	a.System.SomeNS = sysP.Some(end).Total
	a.System.FullNS = sysP.Full(end).Total
	for id, s := range byID {
		if p := cgP[id]; p != nil {
			s.SomeNS = p.Some(end).Total
			s.FullNS = p.Full(end).Total
		}
		a.ByCGroup = append(a.ByCGroup, s)
	}
	sort.Slice(a.ByCGroup, func(i, j int) bool { return a.ByCGroup[i].Path < a.ByCGroup[j].Path })
	return a
}

func fmtDur(t sim.Time) string { return time.Duration(t).String() }

func fmtLat(h *stats.Histogram) string {
	if h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("p50=%s p99=%s max=%s",
		fmtDur(sim.Time(h.Quantile(0.50))),
		fmtDur(sim.Time(h.Quantile(0.99))),
		fmtDur(sim.Time(h.Max())))
}

// stallPct renders a stall integral as a percentage of the span.
func (a *Analysis) stallPct(ns sim.Time) float64 {
	if a.Span <= 0 {
		return 0
	}
	return 100 * float64(ns) / float64(a.Span)
}

func (a *Analysis) formatCG(b *strings.Builder, s *CGSummary) {
	fmt.Fprintf(b, "%s\n", s.Path)
	fmt.Fprintf(b, "  ios      submitted=%d completed=%d read=%s written=%s\n",
		s.Submitted, s.Completed,
		stats.FormatBytes(float64(s.ReadBytes)), stats.FormatBytes(float64(s.WriteBytes)))
	fmt.Fprintf(b, "  latency  %s\n", fmtLat(s.Total))
	fmt.Fprintf(b, "  device   %s\n", fmtLat(s.Device))
	fmt.Fprintf(b, "  throttle %d bios, %s total", s.Throttled, fmtDur(s.ThrottleNS))
	if a.System.ThrottleNS > 0 {
		fmt.Fprintf(b, " (%.1f%% of all throttle wait)",
			100*float64(s.ThrottleNS)/float64(a.System.ThrottleNS))
	}
	b.WriteByte('\n')
	if s.Errors > 0 || s.Timeouts > 0 || s.Retries > 0 {
		fmt.Fprintf(b, "  faults   errors=%d timeouts=%d retries=%d\n",
			s.Errors, s.Timeouts, s.Retries)
	}
	fmt.Fprintf(b, "  pressure some=%.1f%% full=%.1f%% (stall %s / %s)\n",
		a.stallPct(s.SomeNS), a.stallPct(s.FullNS), fmtDur(s.SomeNS), fmtDur(s.FullNS))
}

// Format renders the analysis as a human-readable report.
func (a *Analysis) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %s", a.Events, fmtDur(a.Span))
	if a.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped to ring wraparound)", a.Dropped)
	}
	b.WriteString("\n\n")
	a.formatCG(&b, a.System)
	for _, s := range a.ByCGroup {
		a.formatCG(&b, s)
	}
	if a.Periods > 0 || a.Vrate.Len() > 0 {
		fmt.Fprintf(&b, "controller\n")
		if a.Vrate.Len() > 0 {
			fmt.Fprintf(&b, "  vrate    min=%.2f mean=%.2f max=%.2f over %d samples\n",
				a.Vrate.MinY(), a.Vrate.MeanY(), a.Vrate.MaxY(), a.Vrate.Len())
		}
		fmt.Fprintf(&b, "  periods=%d donations=%d debt-events=%d",
			a.Periods, a.Donations, a.DebtEvents)
		if a.DebtEvents > 0 {
			fmt.Fprintf(&b, " max-debt=%s", fmtDur(a.MaxDebtNS))
		}
		b.WriteByte('\n')
	}
	if a.QueueDepth.Buckets() > 0 {
		fmt.Fprintf(&b, "queue depth |%s|\n", a.QueueDepth.Sparkline(60))
	}
	if a.WaitDepth.Buckets() > 0 {
		fmt.Fprintf(&b, "waiting     |%s|\n", a.WaitDepth.Sparkline(60))
	}
	return b.String()
}

// FormatEvents dumps up to limit events (0 = all) as one line each, in
// stored (emission) order.
func FormatEvents(t *Trace, limit int) string {
	var b strings.Builder
	n := len(t.Events)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		ev := &t.Events[i]
		fmt.Fprintf(&b, "%12d %-14s cg=%-20s", int64(ev.At), ev.Kind, t.CGPath(ev.CG))
		if ev.Kind.BioEvent() {
			op := "R"
			if ev.Op != 0 {
				op = "W"
			}
			fmt.Fprintf(&b, " seq=%-8d %s %8dB @%-12d", ev.Seq, op, ev.Size, ev.Off)
		}
		if ev.Aux != 0 {
			fmt.Fprintf(&b, " aux=%d", ev.Aux)
		}
		b.WriteByte('\n')
	}
	if n < len(t.Events) {
		fmt.Fprintf(&b, "... %d more events\n", len(t.Events)-n)
	}
	return b.String()
}

// DiffResult reports how two traces compare.
type DiffResult struct {
	// Identical is true when cgroup tables and event streams match
	// exactly.
	Identical bool
	// FirstDiverge is the index of the first differing event (-1 when
	// identical or the difference is elsewhere, e.g. the cgroup table).
	FirstDiverge int
	// Report is a human-readable description of the differences.
	Report string
}

// Diff compares two traces semantically: cgroup tables, then the event
// streams event-by-event, then per-kind counts for a summary of what
// changed.
func Diff(a, b *Trace) *DiffResult {
	r := &DiffResult{Identical: true, FirstDiverge: -1}
	var out strings.Builder

	if len(a.CGroups) != len(b.CGroups) {
		r.Identical = false
		fmt.Fprintf(&out, "cgroup tables differ: %d vs %d entries\n", len(a.CGroups), len(b.CGroups))
	} else {
		for i := range a.CGroups {
			if a.CGroups[i] != b.CGroups[i] {
				r.Identical = false
				fmt.Fprintf(&out, "cgroup %d differs: %q vs %q\n", i, a.CGroups[i], b.CGroups[i])
				break
			}
		}
	}

	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			r.Identical = false
			r.FirstDiverge = i
			ea, eb := &a.Events[i], &b.Events[i]
			fmt.Fprintf(&out, "first divergence at event %d:\n", i)
			fmt.Fprintf(&out, "  a: at=%d kind=%s cg=%s seq=%d off=%d size=%d aux=%d\n",
				int64(ea.At), ea.Kind, a.CGPath(ea.CG), ea.Seq, ea.Off, ea.Size, ea.Aux)
			fmt.Fprintf(&out, "  b: at=%d kind=%s cg=%s seq=%d off=%d size=%d aux=%d\n",
				int64(eb.At), eb.Kind, b.CGPath(eb.CG), eb.Seq, eb.Off, eb.Size, eb.Aux)
			break
		}
	}
	if len(a.Events) != len(b.Events) {
		r.Identical = false
		fmt.Fprintf(&out, "event counts differ: %d vs %d\n", len(a.Events), len(b.Events))
	}

	if !r.Identical {
		var ka, kb [kindMax + 1]int
		for i := range a.Events {
			ka[a.Events[i].Kind]++
		}
		for i := range b.Events {
			kb[b.Events[i].Kind]++
		}
		for k := Kind(1); k <= kindMax; k++ {
			if ka[k] != kb[k] {
				fmt.Fprintf(&out, "  %-14s %d vs %d (%+d)\n", k, ka[k], kb[k], kb[k]-ka[k])
			}
		}
		sa, sb := Analyze(a), Analyze(b)
		fmt.Fprintf(&out, "  span %s vs %s; throttle %s vs %s; some-stall %.1f%% vs %.1f%%\n",
			fmtDur(sa.Span), fmtDur(sb.Span),
			fmtDur(sa.System.ThrottleNS), fmtDur(sb.System.ThrottleNS),
			sa.stallPct(sa.System.SomeNS), sb.stallPct(sb.System.SomeNS))
	} else {
		fmt.Fprintf(&out, "traces identical: %d events, %d cgroups\n", len(a.Events), len(a.CGroups))
	}
	r.Report = out.String()
	return r
}

// WorkloadOps converts a trace's submit events into a replayable workload
// trace (times relative to the first submit, cgroup paths resolved), the
// capture half of the capture→replay round trip.
func WorkloadOps(t *Trace) []workload.TraceOp {
	var ops []workload.TraceOp
	var base sim.Time
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind != KindSubmit {
			continue
		}
		if len(ops) == 0 {
			base = ev.At
		}
		op := workload.TraceOp{
			At:   ev.At - base,
			Op:   bio.Op(ev.Op),
			Off:  ev.Off,
			Size: ev.Size,
		}
		if ev.CG != NoCG {
			op.CG = t.CGPath(ev.CG)
		}
		ops = append(ops, op)
	}
	return ops
}
