package trace

import "github.com/iocost-sim/iocost/internal/registry"

// Registry export for recorder health: ring occupancy and drop counts per
// capture stream. Before this existed, events shed by ring wraparound were
// only visible after the fact in Analysis.Dropped — a long capture could
// silently lose its beginning and nothing in iocost-monitor would say so.
//
// A machine can run several recorders at once (the main trace plus the
// flight recorder's black box), and registry family names must be unique,
// so the export is a single set of families with one labeled series per
// stream, registered together via RegisterRecorderMetrics.

// RecorderStream pairs a recorder with its stream label for registration.
type RecorderStream struct {
	// Stream labels the series (convention: "trace" for the main
	// recorder, "flight" for the black box).
	Stream string
	Rec    *Recorder
}

// Cap returns the ring's capacity bound in events.
func (r *Recorder) Cap() int { return r.cap }

// RegisterRecorderMetrics registers per-stream recorder health families on
// r. Labels are pre-built at registration, so gathering allocates nothing
// beyond the collectors themselves.
func RegisterRecorderMetrics(r *registry.Registry, streams []RecorderStream) {
	if len(streams) == 0 {
		return
	}
	labels := make([][]registry.Label, len(streams))
	for i, s := range streams {
		labels[i] = registry.L("stream", s.Stream)
	}
	collector := func(kind registry.Kind, name, help string, value func(*Recorder) float64) {
		r.Collector(name, kind, help, func(emit func([]registry.Label, float64)) {
			for i := range streams {
				emit(labels[i], value(streams[i].Rec))
			}
		})
	}
	collector(registry.Counter, "trace_events_total",
		"telemetry events recorded, per capture stream",
		func(rec *Recorder) float64 { return float64(rec.Total()) })
	collector(registry.Counter, "trace_dropped_total",
		"telemetry events shed by ring wraparound, per capture stream",
		func(rec *Recorder) float64 { return float64(rec.Dropped()) })
	collector(registry.Gauge, "trace_ring_events",
		"telemetry events currently buffered, per capture stream",
		func(rec *Recorder) float64 { return float64(rec.Len()) })
	collector(registry.Gauge, "trace_ring_occupancy",
		"buffered fraction of ring capacity, per capture stream",
		func(rec *Recorder) float64 {
			if rec.Cap() == 0 {
				return 0
			}
			return float64(rec.Len()) / float64(rec.Cap())
		})
}
