package trace_test

import (
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/trace"
)

// benchRecorder returns a recorder whose ring has already grown to
// capacity, plus a bio from an interned cgroup — the steady state every
// long capture runs in.
func benchRecorder(capEvents int) (*trace.Recorder, *bio.Bio) {
	eng := sim.New()
	rec := trace.NewRecorder(eng, capEvents)
	cg := cgroup.NewHierarchy().Root().NewChild("bench", 100)
	b := &bio.Bio{Op: bio.Read, Off: 4096, Size: 4096, CG: cg, Seq: 1}
	for i := 0; i < capEvents+1; i++ {
		rec.OnDispatch(b)
	}
	return rec, b
}

// BenchmarkTraceRecord measures the enabled steady-state hot path (ring
// full, cgroup interned): it must report 0 allocs/op.
func BenchmarkTraceRecord(b *testing.B) {
	rec, bb := benchRecorder(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.OnDispatch(bb)
	}
}

// BenchmarkTraceRecordLifecycle drives all four hooks per iteration, the
// per-bio cost of a fully traced request (6 events: submit, throttle
// begin/end folded into issue, dispatch, device-start, complete).
func BenchmarkTraceRecordLifecycle(b *testing.B) {
	rec, bb := benchRecorder(1 << 12)
	bb.Submitted, bb.Issued, bb.Dispatched, bb.Completed = 0, 10, 20, 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.OnSubmit(bb)
		rec.OnIssue(bb)
		rec.OnDispatch(bb)
		rec.OnComplete(bb)
	}
}

// BenchmarkTraceRecordDisabled measures the disabled cost every untraced
// run pays per hook: one flag check.
func BenchmarkTraceRecordDisabled(b *testing.B) {
	rec, bb := benchRecorder(1 << 12)
	rec.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.OnDispatch(bb)
	}
}

func TestRecorderSteadyStateZeroAllocs(t *testing.T) {
	rec, bb := benchRecorder(1 << 10)
	bb.Submitted, bb.Issued, bb.Dispatched, bb.Completed = 0, 10, 20, 30
	allocs := testing.AllocsPerRun(1000, func() {
		rec.OnSubmit(bb)
		rec.OnIssue(bb)
		rec.OnDispatch(bb)
		rec.OnComplete(bb)
	})
	if allocs != 0 {
		t.Errorf("steady-state record path allocates %.1f/op, want 0", allocs)
	}
}
