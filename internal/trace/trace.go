// Package trace is the simulator's blktrace equivalent: a low-overhead,
// allocation-conscious recorder of typed bio life-cycle events (submit,
// throttle begin/end, issue, dispatch, device start, complete) and
// controller events (vrate changes, donation passes, debt incursion, period
// ticks), with a compact binary on-disk format, a reader, and analysis
// passes (per-cgroup latency percentiles, queue-depth timelines,
// throttle-wait attribution, trace diffing).
//
// The Recorder hooks the block layer through blk.Observer (it can stack
// with the invariant sanitizer — observers fan out in registration order)
// and the IOCost controller through core.EventSink. Recording is
// append-only into a bounded ring of fixed-size Event values: the hot path
// allocates nothing once the ring has grown to its working size, so an
// enabled recorder perturbs neither the schedule (the simulation is
// deterministic in virtual time regardless) nor, measurably, the wall
// clock. Identical runs produce byte-identical traces.
package trace

import (
	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/blk"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/core"
	"github.com/iocost-sim/iocost/internal/sim"
)

// Kind is the event type.
type Kind uint8

const (
	// KindSubmit: a bio entered the block layer. Off/Size/Op/Flags/Seq
	// describe the request.
	KindSubmit Kind = iota + 1
	// KindThrottleBegin marks the start of a controller-hold episode. It
	// is emitted retroactively (when the hold ends) with At set to the
	// submit time, so it appears after later-stamped events in emission
	// order; At is the authoritative timestamp.
	KindThrottleBegin
	// KindThrottleEnd: the controller released a previously held bio; Aux
	// is the hold duration in ns.
	KindThrottleEnd
	// KindIssue: the controller passed the bio toward the device; Aux is
	// the total controller hold in ns (0 for pass-through).
	KindIssue
	// KindDispatch: the bio acquired a device tag and was handed to the
	// device.
	KindDispatch
	// KindDeviceStart: the device began servicing the bio. Emitted
	// retroactively just before its completion event (the device stamps
	// the time when it dequeues internally); At is authoritative.
	KindDeviceStart
	// KindComplete: the device finished the bio; Aux is the total
	// submit-to-complete latency in ns.
	KindComplete

	// KindVrate: the controller re-based vrate; Aux is the new vrate in
	// parts-per-million.
	KindVrate
	// KindDonation: a donation pass transferred budget; Aux is the donor
	// count.
	KindDonation
	// KindDebt: forced IO drove a cgroup into debt; Aux is its
	// outstanding debt in occupancy-ns.
	KindDebt
	// KindPeriod: an IOCost planning period ended; Aux is the vrate in
	// force for the next period, in parts-per-million.
	KindPeriod

	// KindError: the device completed the bio with an error; emitted
	// right after the completion pair. Aux is the attempt number (0 for
	// the first attempt).
	KindError
	// KindTimeout: the block layer timed the bio out before the device
	// answered; emitted right after the completion pair. Aux is the
	// attempt number.
	KindTimeout
	// KindRetry: a failed bio re-entered the block layer for another
	// attempt; emitted just before its new submit event. Aux is the
	// attempt number (1 for the first retry).
	KindRetry

	kindMax = KindRetry
)

var kindNames = [...]string{
	KindSubmit:        "submit",
	KindThrottleBegin: "throttle-begin",
	KindThrottleEnd:   "throttle-end",
	KindIssue:         "issue",
	KindDispatch:      "dispatch",
	KindDeviceStart:   "device-start",
	KindComplete:      "complete",
	KindVrate:         "vrate",
	KindDonation:      "donation",
	KindDebt:          "debt",
	KindPeriod:        "period",
	KindError:         "error",
	KindTimeout:       "timeout",
	KindRetry:         "retry",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// BioEvent reports whether k describes a bio life-cycle stage (as opposed
// to a controller event). The failure kinds carry full request geometry and
// count as bio events.
func (k Kind) BioEvent() bool {
	return (k >= KindSubmit && k <= KindComplete) || k >= KindError
}

// NoCG marks an event not attributable to any cgroup.
const NoCG int32 = -1

// Event is one fixed-size telemetry record. Bio events carry the request
// geometry and the block-layer sequence number for correlation; controller
// events use Aux for their payload (see the Kind constants).
type Event struct {
	// At is the event timestamp on the virtual clock. Events are stored
	// in emission order; for the two retroactive kinds (ThrottleBegin,
	// DeviceStart) At precedes the neighbouring events' stamps.
	At sim.Time
	// Off and Size are the request geometry in bytes (bio events only).
	Off  int64
	Size int64
	// Aux is kind-specific (durations in ns, vrate in ppm, debt in ns,
	// donor counts).
	Aux int64
	// Seq is the block-layer sequence number of the bio (bio events
	// only), correlating all stages of one request.
	Seq uint64
	// CG indexes the trace's cgroup table; NoCG when unattributed.
	CG    int32
	Flags uint16
	Kind  Kind
	Op    uint8
}

// Trace is a decoded or snapshotted trace: an ordered event stream plus the
// cgroup path table CG indexes resolve against.
type Trace struct {
	// CGroups maps cgroup IDs (Event.CG) to hierarchy paths, in
	// first-seen order.
	CGroups []string
	// Events is the stream in emission order.
	Events []Event
	// Dropped counts events lost to ring-buffer wraparound before the
	// snapshot (oldest first).
	Dropped uint64
}

// Span returns the time range covered by the events (max At - min At over
// an empty trace is 0).
func (t *Trace) Span() sim.Time {
	var lo, hi sim.Time
	for i := range t.Events {
		at := t.Events[i].At
		if i == 0 || at < lo {
			lo = at
		}
		if at > hi {
			hi = at
		}
	}
	return hi - lo
}

// CGPath resolves a cgroup ID, tolerating NoCG.
func (t *Trace) CGPath(id int32) string {
	if id < 0 || int(id) >= len(t.CGroups) {
		return "<none>"
	}
	return t.CGroups[id]
}

// DefaultCap is the default recorder capacity in events (the ring keeps
// the most recent DefaultCap when a run overflows it).
const DefaultCap = 1 << 20

// Recorder captures telemetry events into a bounded ring buffer. It
// implements blk.Observer and core.EventSink. The ring grows lazily toward
// its capacity and is then reused in place, so steady-state recording does
// not allocate.
type Recorder struct {
	eng *sim.Engine

	// buf is the ring storage; until it reaches cap it grows by append.
	// Once full, head is the slot the next event overwrites (the oldest
	// event) and the logical order is buf[head:] then buf[:head].
	buf   []Event
	cap   int
	head  int
	total uint64

	cgIDs   map[*cgroup.Node]int32
	cgPaths []string

	enabled bool
}

// NewRecorder returns a recorder on eng's clock holding at most capacity
// events (<= 0 selects DefaultCap). Recording starts enabled.
func NewRecorder(eng *sim.Engine, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{
		eng:     eng,
		cap:     capacity,
		cgIDs:   make(map[*cgroup.Node]int32),
		enabled: true,
	}
}

// Attach registers the recorder as an observer on q. Call SetEventSink on
// the IOCost controller separately to capture controller events.
func (r *Recorder) Attach(q *blk.Queue) { q.AddObserver(r) }

// SetEnabled turns recording on or off; a disabled recorder's hooks return
// after one branch.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Enabled reports whether the recorder is recording.
func (r *Recorder) Enabled() bool { return r.enabled }

// Len returns the number of events currently held.
func (r *Recorder) Len() int { return len(r.buf) }

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped returns how many events were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 { return r.total - uint64(len(r.buf)) }

// cgid interns cg into the trace's cgroup table. IDs are assigned in
// first-seen order, which is deterministic because the simulation is.
func (r *Recorder) cgid(cg *cgroup.Node) int32 {
	if cg == nil {
		return NoCG
	}
	if id, ok := r.cgIDs[cg]; ok {
		return id
	}
	id := int32(len(r.cgPaths))
	r.cgIDs[cg] = id
	r.cgPaths = append(r.cgPaths, cg.Path())
	return id
}

// record appends ev, overwriting the oldest event when the ring is full.
func (r *Recorder) record(ev Event) {
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.head] = ev
	r.head++
	if r.head == r.cap {
		r.head = 0
	}
}

// bioEvent assembles and records one life-cycle event for b.
func (r *Recorder) bioEvent(kind Kind, at sim.Time, b *bio.Bio, aux int64) {
	r.record(Event{
		At:    at,
		Off:   b.Off,
		Size:  b.Size,
		Aux:   aux,
		Seq:   b.Seq,
		CG:    r.cgid(b.CG),
		Flags: uint16(b.Flags),
		Kind:  kind,
		Op:    uint8(b.Op),
	})
}

// OnSubmit implements blk.Observer. A resubmitted bio (the block layer's
// retry path) emits a retry event before its fresh submit.
func (r *Recorder) OnSubmit(b *bio.Bio) {
	if !r.enabled {
		return
	}
	if b.Retries > 0 {
		r.bioEvent(KindRetry, r.eng.Now(), b, int64(b.Retries))
	}
	r.bioEvent(KindSubmit, r.eng.Now(), b, 0)
}

// OnIssue implements blk.Observer. A bio the controller held emits the
// throttle episode (begin retroactively, then end) before its issue event.
func (r *Recorder) OnIssue(b *bio.Bio) {
	if !r.enabled {
		return
	}
	now := r.eng.Now()
	wait := int64(b.Issued - b.Submitted)
	if wait > 0 {
		r.bioEvent(KindThrottleBegin, b.Submitted, b, 0)
		r.bioEvent(KindThrottleEnd, now, b, wait)
	}
	r.bioEvent(KindIssue, now, b, wait)
}

// OnDispatch implements blk.Observer.
func (r *Recorder) OnDispatch(b *bio.Bio) {
	if !r.enabled {
		return
	}
	r.bioEvent(KindDispatch, r.eng.Now(), b, 0)
}

// OnComplete implements blk.Observer: the device's internal start time
// becomes known here, so the device-start event precedes the completion.
// Failed attempts additionally emit their error or timeout event.
func (r *Recorder) OnComplete(b *bio.Bio) {
	if !r.enabled {
		return
	}
	r.bioEvent(KindDeviceStart, b.Dispatched, b, 0)
	r.bioEvent(KindComplete, r.eng.Now(), b, int64(b.Completed-b.Submitted))
	switch b.Status {
	case bio.StatusError:
		r.bioEvent(KindError, r.eng.Now(), b, int64(b.Retries))
	case bio.StatusTimeout:
		r.bioEvent(KindTimeout, r.eng.Now(), b, int64(b.Retries))
	}
}

// ppm converts a rate to integer parts-per-million for Aux.
func ppm(v float64) int64 { return int64(v*1e6 + 0.5) }

// ControllerEvent implements core.EventSink.
func (r *Recorder) ControllerEvent(at sim.Time, kind core.CtlEventKind, cg *cgroup.Node, value float64) {
	if !r.enabled {
		return
	}
	ev := Event{At: at, CG: r.cgid(cg)}
	switch kind {
	case core.CtlVrateChange:
		ev.Kind, ev.Aux = KindVrate, ppm(value)
	case core.CtlDonation:
		ev.Kind, ev.Aux = KindDonation, int64(value)
	case core.CtlDebtIncur:
		ev.Kind, ev.Aux = KindDebt, int64(value)
	case core.CtlPeriodTick:
		ev.Kind, ev.Aux = KindPeriod, ppm(value)
	default:
		return
	}
	r.record(ev)
}

// Trace snapshots the recorder into an immutable Trace, oldest event
// first.
func (r *Recorder) Trace() *Trace {
	t := &Trace{
		CGroups: append([]string(nil), r.cgPaths...),
		Events:  make([]Event, 0, len(r.buf)),
		Dropped: r.Dropped(),
	}
	if len(r.buf) == r.cap {
		t.Events = append(t.Events, r.buf[r.head:]...)
		t.Events = append(t.Events, r.buf[:r.head]...)
	} else {
		t.Events = append(t.Events, r.buf...)
	}
	return t
}
