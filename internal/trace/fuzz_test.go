package trace

import (
	"os"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the hardened trace decoder: any input
// may be rejected with an error, none may panic or hang. Seeded from the v1
// golden fixture so the corpus starts inside the format, plus truncations
// and a bit-flip of it to reach the interesting error paths fast.
func FuzzDecode(f *testing.F) {
	golden, err := os.ReadFile("testdata/golden_v1.trace")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	for _, cut := range []int{0, 1, 4, 8, len(golden) / 2, len(golden) - 1} {
		if cut <= len(golden) {
			f.Add(append([]byte(nil), golden[:cut]...))
		}
	}
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted inputs must decode into an internally consistent trace:
		// every event's cgroup index resolves (CGPath tolerates any int32,
		// but in-range ones must not be empty strings).
		for _, ev := range tr.Events {
			if ev.CG >= 0 && int(ev.CG) < len(tr.CGroups) && tr.CGroups[ev.CG] == "" {
				t.Fatalf("decoded event references empty cgroup path %d", ev.CG)
			}
		}
	})
}
