package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/iocost-sim/iocost/internal/blk"
	"github.com/iocost-sim/iocost/internal/cgroup"
	"github.com/iocost-sim/iocost/internal/check"
	"github.com/iocost-sim/iocost/internal/core"
	"github.com/iocost-sim/iocost/internal/device"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/trace"
	"github.com/iocost-sim/iocost/internal/workload"
)

// idealParams mirrors the derivation the core integration tests use.
func idealParams(spec device.SSDSpec) core.LinearParams {
	p := float64(spec.Parallelism)
	return core.LinearParams{
		RBps:      spec.ReadBps,
		RSeqIOPS:  p / spec.SeqReadNS * 1e9,
		RRandIOPS: p / spec.RandReadNS * 1e9,
		WBps:      spec.SustainedWBp,
		WSeqIOPS:  p / spec.SeqWriteNS * 1e9,
		WRandIOPS: p / spec.RandWriteNS * 1e9,
	}
}

type rig struct {
	eng  *sim.Engine
	q    *blk.Queue
	ctl  *core.Controller
	hier *cgroup.Hierarchy
	rec  *trace.Recorder
}

// newRig builds a full contended stack — engine, SSD, IOCost controller —
// with a recorder attached, optionally under the sanitizer.
func newRig(t *testing.T, sanitize bool, capEvents int) *rig {
	t.Helper()
	eng := sim.New()
	spec := device.OlderGenSSD()
	dev := device.NewSSD(eng, spec, 42)
	c := core.New(core.Config{
		Model: core.MustLinearModel(idealParams(spec)),
		QoS: core.QoS{
			RPct: 90, RLat: 400 * sim.Microsecond,
			WPct: 90, WLat: 2 * sim.Millisecond,
			VrateMin: 0.25, VrateMax: 1.5,
		},
	})
	hier := cgroup.NewHierarchy()
	var inner blk.Controller = c
	var san *check.Sanitizer
	if sanitize {
		san = check.Wrap(c, check.Options{
			Hier: hier,
			Fail: func(msg string) { t.Error(msg) },
		})
		inner = san
	}
	// blk.New calls inner.Attach, which registers the sanitizer observer.
	q := blk.New(eng, dev, inner, 0)
	rec := trace.NewRecorder(eng, capEvents)
	rec.Attach(q)
	c.SetEventSink(rec)
	return &rig{eng: eng, q: q, ctl: c, hier: hier, rec: rec}
}

// contend runs two weighted random-read saturators for d of simulated time.
func (r *rig) contend(d sim.Time) {
	lo := r.hier.Root().NewChild("lo", 100)
	hi := r.hier.Root().NewChild("hi", 200)
	workload.NewSaturator(r.q, workload.SaturatorConfig{
		CG: lo, Op: 0, Pattern: workload.Random, Size: 4096, Depth: 32, Seed: 1,
	}).Start()
	workload.NewSaturator(r.q, workload.SaturatorConfig{
		CG: hi, Op: 0, Pattern: workload.Random, Size: 4096, Depth: 32,
		Region: 32 << 30, Seed: 2,
	}).Start()
	r.eng.RunUntil(d)
}

func kindCounts(t *trace.Trace) map[trace.Kind]int {
	m := make(map[trace.Kind]int)
	for i := range t.Events {
		m[t.Events[i].Kind]++
	}
	return m
}

func TestRecorderCapturesFullLifecycle(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(500 * sim.Millisecond)
	tr := r.rec.Trace()

	k := kindCounts(tr)
	if k[trace.KindSubmit] == 0 {
		t.Fatal("no submit events recorded")
	}
	// Every life-cycle stage must balance for completed IO; with open
	// saturators some bios are still in flight at the horizon, so stages
	// may only lag, never lead.
	if k[trace.KindIssue] > k[trace.KindSubmit] {
		t.Errorf("issues (%d) > submits (%d)", k[trace.KindIssue], k[trace.KindSubmit])
	}
	if k[trace.KindComplete] > k[trace.KindDispatch] {
		t.Errorf("completes (%d) > dispatches (%d)", k[trace.KindComplete], k[trace.KindDispatch])
	}
	if k[trace.KindDeviceStart] != k[trace.KindComplete] {
		t.Errorf("device-starts (%d) != completes (%d)", k[trace.KindDeviceStart], k[trace.KindComplete])
	}
	// A saturated device under IOCost must throttle and tick periods.
	if k[trace.KindThrottleEnd] == 0 {
		t.Error("no throttle events despite saturation")
	}
	if k[trace.KindPeriod] == 0 {
		t.Error("no period ticks from the controller sink")
	}
	if got := tr.CGroups; len(got) != 2 || got[0] != "/lo" || got[1] != "/hi" {
		t.Errorf("cgroup table = %v, want [/lo /hi] in first-IO order", got)
	}
	if tr.Dropped != 0 {
		t.Errorf("dropped = %d with default capacity", tr.Dropped)
	}
	// Throttle episodes carry consistent aux: end aux equals issue aux.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Kind == trace.KindIssue && i >= 2 &&
			tr.Events[i-1].Kind == trace.KindThrottleEnd &&
			tr.Events[i-1].Seq == tr.Events[i].Seq {
			if tr.Events[i-1].Aux != tr.Events[i].Aux {
				t.Fatalf("event %d: throttle-end aux %d != issue aux %d",
					i, tr.Events[i-1].Aux, tr.Events[i].Aux)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(200 * sim.Millisecond)
	tr := r.rec.Trace()

	data := trace.Encode(tr)
	got, err := trace.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("decoded trace differs from original")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	run := func() []byte {
		r := newRig(t, false, 0)
		r.contend(200 * sim.Millisecond)
		return trace.Encode(r.rec.Trace())
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs encoded to different bytes")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(50 * sim.Millisecond)
	data := trace.Encode(r.rec.Trace())

	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("NOPE"), data[4:]...),
		"bad version": append(append([]byte{}, data[:4]...), append([]byte{99}, data[5:]...)...),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte{}, data...), 0xff),
	}
	for name, in := range cases {
		if _, err := trace.Decode(in); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestRingWrapKeepsNewestEvents(t *testing.T) {
	const capEvents = 256
	r := newRig(t, false, capEvents)
	r.contend(200 * sim.Millisecond)
	tr := r.rec.Trace()

	if len(tr.Events) != capEvents {
		t.Fatalf("len = %d, want cap %d", len(tr.Events), capEvents)
	}
	if tr.Dropped == 0 {
		t.Fatal("expected drops from wraparound")
	}
	if tr.Dropped+uint64(capEvents) != r.rec.Total() {
		t.Errorf("dropped (%d) + kept (%d) != total (%d)", tr.Dropped, capEvents, r.rec.Total())
	}
	// The kept window is the newest events: its span must end at the last
	// recorded timestamp seen by an unbounded recorder... simpler: all
	// retained submit times must be later than the drop horizon implies;
	// check emission-order At values are near-monotone (retroactive events
	// may step back, but never before the window).
	var minAt, maxAt sim.Time = tr.Events[0].At, tr.Events[0].At
	for _, ev := range tr.Events {
		if ev.At < minAt {
			minAt = ev.At
		}
		if ev.At > maxAt {
			maxAt = ev.At
		}
	}
	if minAt == 0 {
		t.Error("oldest events were not overwritten")
	}
}

func TestRecorderCoexistsWithSanitizer(t *testing.T) {
	r := newRig(t, true, 0)
	r.contend(200 * sim.Millisecond)
	tr := r.rec.Trace()
	if len(tr.Events) == 0 {
		t.Fatal("recorder captured nothing while stacked with the sanitizer")
	}
	if len(r.q.Observers()) != 2 {
		t.Fatalf("observer count = %d, want 2 (sanitizer + recorder)", len(r.q.Observers()))
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	r := newRig(t, false, 0)
	r.rec.SetEnabled(false)
	r.contend(50 * sim.Millisecond)
	if n := r.rec.Total(); n != 0 {
		t.Fatalf("disabled recorder captured %d events", n)
	}
}

func TestAnalyzeSummarizesPerCGroup(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(500 * sim.Millisecond)
	tr := r.rec.Trace()
	a := trace.Analyze(tr)

	if a.Events != len(tr.Events) {
		t.Errorf("Events = %d, want %d", a.Events, len(tr.Events))
	}
	if len(a.ByCGroup) != 2 {
		t.Fatalf("ByCGroup = %d entries, want 2", len(a.ByCGroup))
	}
	if a.ByCGroup[0].Path != "/hi" || a.ByCGroup[1].Path != "/lo" {
		t.Errorf("paths = [%s %s], want sorted [/hi /lo]", a.ByCGroup[0].Path, a.ByCGroup[1].Path)
	}
	var subs uint64
	for _, s := range a.ByCGroup {
		subs += s.Submitted
		if s.Total.Count() == 0 {
			t.Errorf("%s: no latency samples", s.Path)
		}
		if s.Total.Quantile(0.99) < s.Total.Quantile(0.50) {
			t.Errorf("%s: p99 < p50", s.Path)
		}
	}
	if subs != a.System.Submitted {
		t.Errorf("per-cgroup submits (%d) != system (%d)", subs, a.System.Submitted)
	}
	if a.System.ThrottleNS == 0 {
		t.Error("no throttle wait attributed under saturation")
	}
	if a.System.SomeNS == 0 {
		t.Error("no some-pressure reconstructed under saturation")
	}
	if a.Periods == 0 {
		t.Error("no controller periods in analysis")
	}
	out := a.Format()
	for _, want := range []string{"<system>", "/lo", "/hi", "latency", "pressure", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestDiffDetectsAndLocatesDivergence(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(100 * sim.Millisecond)
	a := r.rec.Trace()

	if d := trace.Diff(a, a); !d.Identical {
		t.Fatalf("self-diff not identical:\n%s", d.Report)
	}

	b := &trace.Trace{
		CGroups: append([]string(nil), a.CGroups...),
		Events:  append([]trace.Event(nil), a.Events...),
	}
	const mutate = 17
	b.Events[mutate].Aux += 5
	d := trace.Diff(a, b)
	if d.Identical {
		t.Fatal("diff missed a mutated event")
	}
	if d.FirstDiverge != mutate {
		t.Errorf("FirstDiverge = %d, want %d", d.FirstDiverge, mutate)
	}
	if !strings.Contains(d.Report, "first divergence") {
		t.Errorf("report lacks divergence details:\n%s", d.Report)
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(100 * sim.Millisecond)
	ops := trace.WorkloadOps(r.rec.Trace())
	if len(ops) == 0 {
		t.Fatal("no ops extracted")
	}
	for _, op := range ops {
		if op.CG != "/lo" && op.CG != "/hi" {
			t.Fatalf("op cgroup = %q, want /lo or /hi", op.CG)
		}
	}

	var buf bytes.Buffer
	if err := workload.FormatTrace(&buf, ops); err != nil {
		t.Fatalf("FormatTrace: %v", err)
	}
	back, err := workload.ParseTrace(&buf)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if !reflect.DeepEqual(back, ops) {
		if len(back) != len(ops) {
			t.Fatalf("round trip count %d != %d", len(back), len(ops))
		}
		for i := range ops {
			if back[i] != ops[i] {
				t.Fatalf("op %d round-tripped as %+v, want %+v", i, back[i], ops[i])
			}
		}
	}
}

func TestFormatEventsDumps(t *testing.T) {
	r := newRig(t, false, 0)
	r.contend(50 * sim.Millisecond)
	tr := r.rec.Trace()
	out := trace.FormatEvents(tr, 10)
	lines := strings.Count(out, "\n")
	if lines != 11 { // 10 events + the "more" line
		t.Errorf("lines = %d, want 11:\n%s", lines, out)
	}
	if !strings.Contains(out, "submit") {
		t.Errorf("dump lacks a submit event:\n%s", out)
	}
}
