// Package span reconstructs causal per-bio span trees from telemetry
// traces: submit → throttle-hold → queue → device-wait → device →
// completion (and, across failed attempts, retry backoff), each span
// annotated with the controller state that was concurrently in force —
// vrate at submit, debt and donation events inside the span's window, and
// any injected fault episodes the bio's device time overlapped.
//
// It is a pure analysis pass over internal/trace captures: nothing here
// runs on the simulation hot path, and the output is a deterministic
// function of the trace (plus an optional fault plan), so span reports and
// the Perfetto export are byte-identical for identical seeds.
//
// The blame aggregation answers the operator's question ("what fraction of
// this cgroup's p99 came from throttling vs the device vs retries vs the
// GC storm?") by decomposing the submit→complete latency of every bio in
// the p99 tail into exclusive phases that sum exactly to the total.
package span

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/iocost-sim/iocost/internal/fault"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/stats"
	"github.com/iocost-sim/iocost/internal/trace"
)

// Phase labels one exclusive segment of a bio's life.
type Phase uint8

const (
	// PhaseThrottle is controller hold time (submit → issue).
	PhaseThrottle Phase = iota
	// PhaseQueue is block-layer queueing (issue → dispatch).
	PhaseQueue
	// PhaseDevWait is device-internal queueing (dispatch → device start).
	PhaseDevWait
	// PhaseDevice is device service time (device start → complete).
	PhaseDevice
	// PhaseRetry is backoff between a failed attempt and its resubmit.
	PhaseRetry

	phaseCount
)

var phaseNames = [...]string{
	PhaseThrottle: "throttle",
	PhaseQueue:    "queue",
	PhaseDevWait:  "devwait",
	PhaseDevice:   "device",
	PhaseRetry:    "retry",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Segment is one contiguous phase interval inside a span, in wall (virtual)
// time. Segments are what the Perfetto export renders as nested slices.
type Segment struct {
	Phase   Phase
	Start   sim.Time
	End     sim.Time
	Attempt int
}

// Span is one bio's reconstructed life, possibly spanning several attempts
// (retries re-enter the block layer under the same sequence number).
type Span struct {
	Seq  uint64
	CG   int32
	Op   uint8
	Off  int64
	Size int64

	// Submit is the first attempt's submission; Complete the final
	// completion. Total == Complete - Submit.
	Submit   sim.Time
	Complete sim.Time

	// Exclusive phase durations; they sum exactly to Total().
	Throttle sim.Time
	Queue    sim.Time
	DevWait  sim.Time
	Device   sim.Time
	Retry    sim.Time

	// Fault is the part of device time overlapped by injected fault
	// episodes (when Build was given the plan): the union of episode
	// windows, so concurrent episodes never double-count. FaultByKind
	// splits attribution per failure mode and CAN sum past Fault when
	// episodes overlap. Fault is attribution, not an extra phase: it
	// names a cause for time already counted under Device/DevWait.
	Fault       sim.Time
	FaultByKind [6]sim.Time // indexed by fault.Kind (1..5)

	// Attempts counts submissions (1 = no retries). Status is the final
	// completion's status: "ok", "error" or "timeout".
	Attempts int
	Status   string

	// VrateAtSubmit is the controller vrate in force when the bio was
	// submitted (fraction of nominal; -1 when the trace carries no
	// controller events before the submit).
	VrateAtSubmit float64
	// Debt and Donations count controller events for this span's cgroup
	// (debt) or fleet-wide (donations) inside [Submit, Complete].
	Debt      int
	Donations int

	// Segments are the span's phase intervals in time order.
	Segments []Segment
}

// Total returns the submit-to-final-complete latency.
func (s *Span) Total() sim.Time { return s.Complete - s.Submit }

// Set is the reconstructed spans of one trace, in first-submit order, plus
// the inputs the Perfetto export needs to render controller context.
type Set struct {
	Spans []Span
	// Trace is the capture the spans came from (cgroup table, controller
	// events).
	Trace *trace.Trace
	// Plan is the fault plan used for episode attribution (may be empty).
	Plan fault.Plan
	// Incomplete counts bios whose life-cycle was cut off by the ring or
	// the end of the capture (submitted, never completed in-window).
	Incomplete int
}

// pending is the under-construction state for one in-flight bio.
type pending struct {
	span       Span
	issueAt    sim.Time
	dispatchAt sim.Time
	devStartAt sim.Time
	lastFail   sim.Time
	haveIssue  bool
	haveDisp   bool
	haveStart  bool
	completed  bool
	order      int
}

// overlap returns the intersection of [a0,a1) with [b0,b1).
func overlap(a0, a1, b0, b1 sim.Time) sim.Time {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// unionOverlap returns how much of [w0,w1) is covered by the union of the
// episode windows — concurrent episodes count once.
func unionOverlap(w0, w1 sim.Time, eps []fault.Episode) sim.Time {
	type iv struct{ lo, hi sim.Time }
	clipped := make([]iv, 0, len(eps))
	for _, ep := range eps {
		lo, hi := ep.At, ep.End()
		if lo < w0 {
			lo = w0
		}
		if hi > w1 {
			hi = w1
		}
		if hi > lo {
			clipped = append(clipped, iv{lo, hi})
		}
	}
	sort.Slice(clipped, func(i, j int) bool { return clipped[i].lo < clipped[j].lo })
	var total, end sim.Time
	for _, c := range clipped {
		if c.lo > end {
			total += c.hi - c.lo
			end = c.hi
		} else if c.hi > end {
			total += c.hi - end
			end = c.hi
		}
	}
	return total
}

// Build reconstructs the span set of t. plan, when non-empty, drives fault
// episode attribution (device-phase overlap with active episodes). The
// result is deterministic: spans appear in first-submit order and every
// annotation derives from event order alone.
func Build(t *trace.Trace, plan fault.Plan) *Set {
	set := &Set{Trace: t, Plan: plan}
	open := make(map[uint64]*pending)
	done := make([]*pending, 0)
	order := 0

	lastVrate := -1.0
	var debts []cgEvent
	var donations []sim.Time

	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Kind {
		case trace.KindVrate, trace.KindPeriod:
			lastVrate = float64(ev.Aux) / 1e6
		case trace.KindDebt:
			debts = append(debts, cgEvent{at: ev.At, cg: ev.CG})
		case trace.KindDonation:
			donations = append(donations, ev.At)

		case trace.KindSubmit:
			p := open[ev.Seq]
			if p == nil {
				p = &pending{order: order}
				order++
				p.span = Span{
					Seq: ev.Seq, CG: ev.CG, Op: ev.Op, Off: ev.Off, Size: ev.Size,
					Submit: ev.At, Attempts: 1, Status: "ok",
					VrateAtSubmit: lastVrate,
				}
				open[ev.Seq] = p
			} else {
				// A resubmit after failure: the gap since the failed
				// completion is retry backoff.
				p.span.Attempts++
				if ev.At > p.lastFail {
					p.span.Retry += ev.At - p.lastFail
					p.span.Segments = append(p.span.Segments, Segment{
						Phase: PhaseRetry, Start: p.lastFail, End: ev.At,
						Attempt: p.span.Attempts,
					})
				}
				p.completed = false
			}
			p.haveIssue, p.haveDisp, p.haveStart = false, false, false

		case trace.KindIssue:
			p := open[ev.Seq]
			if p == nil {
				continue
			}
			p.issueAt = ev.At
			p.haveIssue = true
			if ev.Aux > 0 {
				p.span.Throttle += sim.Time(ev.Aux)
				p.span.Segments = append(p.span.Segments, Segment{
					Phase: PhaseThrottle, Start: ev.At - sim.Time(ev.Aux), End: ev.At,
					Attempt: p.span.Attempts,
				})
			}

		case trace.KindDispatch:
			p := open[ev.Seq]
			if p == nil || !p.haveIssue {
				continue
			}
			p.dispatchAt = ev.At
			p.haveDisp = true
			if ev.At > p.issueAt {
				p.span.Queue += ev.At - p.issueAt
				p.span.Segments = append(p.span.Segments, Segment{
					Phase: PhaseQueue, Start: p.issueAt, End: ev.At,
					Attempt: p.span.Attempts,
				})
			}

		case trace.KindDeviceStart:
			p := open[ev.Seq]
			if p == nil || !p.haveDisp {
				continue
			}
			p.devStartAt = ev.At
			p.haveStart = true
			if ev.At > p.dispatchAt {
				p.span.DevWait += ev.At - p.dispatchAt
				p.span.Segments = append(p.span.Segments, Segment{
					Phase: PhaseDevWait, Start: p.dispatchAt, End: ev.At,
					Attempt: p.span.Attempts,
				})
			}

		case trace.KindComplete:
			p := open[ev.Seq]
			if p == nil {
				continue
			}
			p.span.Complete = ev.At
			p.completed = true
			p.lastFail = ev.At
			if p.haveStart && ev.At > p.devStartAt {
				p.span.Device += ev.At - p.devStartAt
				p.span.Segments = append(p.span.Segments, Segment{
					Phase: PhaseDevice, Start: p.devStartAt, End: ev.At,
					Attempt: p.span.Attempts,
				})
			}
			// Attribute injected episodes overlapping the attempt's device
			// window (dispatch → complete: stalls, slowdowns and GC storms
			// all land there).
			if !plan.Empty() && p.haveDisp {
				for _, ep := range plan.Episodes {
					if ov := overlap(p.dispatchAt, ev.At, ep.At, ep.End()); ov > 0 {
						if int(ep.Kind) < len(p.span.FaultByKind) {
							p.span.FaultByKind[ep.Kind] += ov
						}
					}
				}
				p.span.Fault += unionOverlap(p.dispatchAt, ev.At, plan.Episodes)
			}
			p.span.Status = "ok"

		case trace.KindError:
			if p := open[ev.Seq]; p != nil {
				p.span.Status = "error"
			}
		case trace.KindTimeout:
			if p := open[ev.Seq]; p != nil {
				p.span.Status = "timeout"
			}
		}
	}

	for seq, p := range open {
		_ = seq
		if p.completed {
			done = append(done, p)
		} else {
			set.Incomplete++
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].order < done[j].order })

	for _, p := range done {
		s := p.span
		// In-window controller-event annotations (event streams are
		// time-ordered, so binary search bounds the window).
		s.Debt = countCG(debts, s.Submit, s.Complete, s.CG)
		s.Donations = countAt(donations, s.Submit, s.Complete)
		set.Spans = append(set.Spans, s)
	}
	return set
}

func countAt(ats []sim.Time, lo, hi sim.Time) int {
	i := sort.Search(len(ats), func(i int) bool { return ats[i] >= lo })
	j := sort.Search(len(ats), func(i int) bool { return ats[i] > hi })
	return j - i
}

// cgEvent is a time-ordered controller event tagged with its cgroup.
type cgEvent struct {
	at sim.Time
	cg int32
}

func countCG(evs []cgEvent, lo, hi sim.Time, cg int32) int {
	i := sort.Search(len(evs), func(i int) bool { return evs[i].at >= lo })
	n := 0
	for ; i < len(evs) && evs[i].at <= hi; i++ {
		if evs[i].cg == cg {
			n++
		}
	}
	return n
}

// Blame is one scope's (cgroup's or the system's) p99-tail latency
// decomposition: which phases the slowest bios spent their time in, and how
// much of that time injected fault episodes overlapped.
type Blame struct {
	Path  string `json:"path"`
	Spans int    `json:"spans"`
	// P99NS is the scope's submit→complete p99; TailSpans counts the spans
	// at or above it whose time the fractions decompose.
	P99NS     int64 `json:"p99_ns"`
	TailSpans int   `json:"tail_spans"`
	// TailNS is the summed total latency of the tail spans.
	TailNS int64 `json:"tail_ns"`
	// Phase fractions of TailNS; they sum to 1 (within float rounding).
	ThrottleFrac float64 `json:"throttle_frac"`
	QueueFrac    float64 `json:"queue_frac"`
	DevWaitFrac  float64 `json:"devwait_frac"`
	DeviceFrac   float64 `json:"device_frac"`
	RetryFrac    float64 `json:"retry_frac"`
	// FaultFrac is the fraction of TailNS overlapped by injected episodes
	// (attribution over the device window, not an additional phase);
	// FaultByKind splits it by failure mode, keys in fault.Kind order.
	FaultFrac   float64            `json:"fault_frac"`
	FaultByKind map[string]float64 `json:"fault_by_kind,omitempty"`
	// Retries and Failures count attempts beyond the first and spans whose
	// final status was not ok, across the whole scope.
	Retries  int `json:"retries"`
	Failures int `json:"failures"`
}

// Report is the blame aggregation of a span set.
type Report struct {
	Spans      int     `json:"spans"`
	Incomplete int     `json:"incomplete"`
	System     Blame   `json:"system"`
	ByCGroup   []Blame `json:"by_cgroup"`
}

// blameScope aggregates one scope.
func blameScope(path string, spans []*Span) Blame {
	b := Blame{Path: path, Spans: len(spans)}
	h := stats.NewHistogram()
	for _, s := range spans {
		h.Observe(int64(s.Total()))
		b.Retries += s.Attempts - 1
		if s.Status != "ok" {
			b.Failures++
		}
	}
	if len(spans) == 0 {
		return b
	}
	p99 := h.Quantile(0.99)
	b.P99NS = p99
	var total, throttle, queue, devwait, device, retry, flt sim.Time
	byKind := [6]sim.Time{}
	for _, s := range spans {
		if int64(s.Total()) < p99 {
			continue
		}
		b.TailSpans++
		total += s.Total()
		throttle += s.Throttle
		queue += s.Queue
		devwait += s.DevWait
		device += s.Device
		retry += s.Retry
		flt += s.Fault
		for k := range byKind {
			byKind[k] += s.FaultByKind[k]
		}
	}
	b.TailNS = int64(total)
	if total > 0 {
		frac := func(v sim.Time) float64 { return float64(v) / float64(total) }
		b.ThrottleFrac = frac(throttle)
		b.QueueFrac = frac(queue)
		b.DevWaitFrac = frac(devwait)
		b.DeviceFrac = frac(device)
		b.RetryFrac = frac(retry)
		b.FaultFrac = frac(flt)
		for k, v := range byKind {
			if v > 0 {
				if b.FaultByKind == nil {
					b.FaultByKind = make(map[string]float64)
				}
				b.FaultByKind[fault.Kind(k).String()] = frac(v)
			}
		}
	}
	return b
}

// Blame aggregates the set into per-cgroup (and system-wide) p99
// decompositions, cgroups sorted by path.
func (set *Set) Blame() *Report {
	r := &Report{Spans: len(set.Spans), Incomplete: set.Incomplete}
	all := make([]*Span, 0, len(set.Spans))
	byCG := make(map[int32][]*Span)
	for i := range set.Spans {
		s := &set.Spans[i]
		all = append(all, s)
		byCG[s.CG] = append(byCG[s.CG], s)
	}
	r.System = blameScope("<system>", all)
	ids := make([]int32, 0, len(byCG))
	for id := range byCG {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return set.Trace.CGPath(ids[i]) < set.Trace.CGPath(ids[j])
	})
	for _, id := range ids {
		r.ByCGroup = append(r.ByCGroup, blameScope(set.Trace.CGPath(id), byCG[id]))
	}
	return r
}

func fmtDur(t sim.Time) string { return time.Duration(t).String() }

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Format renders the report as a human-readable blame table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spans: %d complete", r.Spans)
	if r.Incomplete > 0 {
		fmt.Fprintf(&b, " (%d cut off by the capture window)", r.Incomplete)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-24s %6s %10s %9s %8s %8s %8s %8s %8s %8s\n",
		"scope", "spans", "p99", "throttle", "queue", "devwait", "device", "retry", "fault", "fails")
	row := func(bl *Blame) {
		fmt.Fprintf(&b, "%-24s %6d %10s %9s %8s %8s %8s %8s %8s %8d\n",
			bl.Path, bl.Spans, fmtDur(sim.Time(bl.P99NS)),
			pct(bl.ThrottleFrac), pct(bl.QueueFrac), pct(bl.DevWaitFrac),
			pct(bl.DeviceFrac), pct(bl.RetryFrac), pct(bl.FaultFrac), bl.Failures)
	}
	row(&r.System)
	for i := range r.ByCGroup {
		row(&r.ByCGroup[i])
	}
	kinds := r.System.FaultByKind
	if len(kinds) > 0 {
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("fault kinds (system tail): ")
		for i, k := range names {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%s", k, pct(kinds[k]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Validate checks a decoded report's invariants: non-negative counts and
// fractions within [0, 1+ε]. Incident-bundle validation uses it.
func (r *Report) Validate() error {
	check := func(b *Blame) error {
		if b.Spans < 0 || b.TailSpans < 0 || b.P99NS < 0 || b.TailNS < 0 {
			return fmt.Errorf("span: blame %q has negative counts", b.Path)
		}
		for _, f := range []float64{b.ThrottleFrac, b.QueueFrac, b.DevWaitFrac,
			b.DeviceFrac, b.RetryFrac, b.FaultFrac} {
			if f < 0 || f > 1.0000001 {
				return fmt.Errorf("span: blame %q has fraction %v outside [0,1]", b.Path, f)
			}
		}
		return nil
	}
	if err := check(&r.System); err != nil {
		return err
	}
	for i := range r.ByCGroup {
		if err := check(&r.ByCGroup[i]); err != nil {
			return err
		}
	}
	return nil
}
