package span_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/device"
	"github.com/iocost-sim/iocost/internal/exp"
	"github.com/iocost-sim/iocost/internal/fault"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/span"
	"github.com/iocost-sim/iocost/internal/trace"
	"github.com/iocost-sim/iocost/internal/workload"
)

// synthetic builds a hand-authored trace: full control over every timestamp
// so the phase decomposition can be pinned exactly.
func synthetic(events []trace.Event) *trace.Trace {
	return &trace.Trace{CGroups: []string{"/workload/hi", "/workload/lo"}, Events: events}
}

func TestBuildDecomposition(t *testing.T) {
	tr := synthetic([]trace.Event{
		{Kind: trace.KindVrate, At: 50, Aux: 800000, CG: trace.NoCG},
		{Kind: trace.KindSubmit, At: 100, Seq: 1, CG: 0, Op: uint8(bio.Read), Off: 4096, Size: 512},
		{Kind: trace.KindIssue, At: 150, Seq: 1, CG: 0, Aux: 50},
		{Kind: trace.KindDispatch, At: 160, Seq: 1, CG: 0},
		{Kind: trace.KindDebt, At: 200, CG: 0},
		{Kind: trace.KindDeviceStart, At: 170, Seq: 1, CG: 0},
		{Kind: trace.KindDonation, At: 250, CG: trace.NoCG},
		{Kind: trace.KindComplete, At: 270, Seq: 1, CG: 0, Aux: 170},
	})
	set := span.Build(tr, fault.Plan{})
	if len(set.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(set.Spans))
	}
	s := set.Spans[0]
	if s.Submit != 100 || s.Complete != 270 || s.Total() != 170 {
		t.Fatalf("span window [%d,%d] total %d, want [100,270] 170", s.Submit, s.Complete, s.Total())
	}
	if s.Throttle != 50 || s.Queue != 10 || s.DevWait != 10 || s.Device != 100 || s.Retry != 0 {
		t.Fatalf("phases throttle=%d queue=%d devwait=%d device=%d retry=%d, want 50/10/10/100/0",
			s.Throttle, s.Queue, s.DevWait, s.Device, s.Retry)
	}
	if sum := s.Throttle + s.Queue + s.DevWait + s.Device + s.Retry; sum != s.Total() {
		t.Fatalf("phases sum to %d, want total %d", sum, s.Total())
	}
	if s.VrateAtSubmit != 0.8 {
		t.Fatalf("vrate at submit %v, want 0.8", s.VrateAtSubmit)
	}
	if s.Debt != 1 || s.Donations != 1 {
		t.Fatalf("debt=%d donations=%d, want 1/1", s.Debt, s.Donations)
	}
	if s.Status != "ok" || s.Attempts != 1 {
		t.Fatalf("status=%q attempts=%d, want ok/1", s.Status, s.Attempts)
	}
	if len(s.Segments) != 4 {
		t.Fatalf("got %d segments, want 4", len(s.Segments))
	}
}

func TestBuildRetry(t *testing.T) {
	tr := synthetic([]trace.Event{
		// Attempt 1: fails at t=20.
		{Kind: trace.KindSubmit, At: 0, Seq: 7, CG: 1, Op: uint8(bio.Write)},
		{Kind: trace.KindIssue, At: 10, Seq: 7, CG: 1, Aux: 10},
		{Kind: trace.KindDispatch, At: 10, Seq: 7, CG: 1},
		{Kind: trace.KindDeviceStart, At: 10, Seq: 7, CG: 1},
		{Kind: trace.KindComplete, At: 20, Seq: 7, CG: 1, Aux: 20},
		{Kind: trace.KindError, At: 20, Seq: 7, CG: 1, Aux: 1},
		// Attempt 2 after 30ns of backoff.
		{Kind: trace.KindSubmit, At: 50, Seq: 7, CG: 1},
		{Kind: trace.KindIssue, At: 60, Seq: 7, CG: 1, Aux: 10},
		{Kind: trace.KindDispatch, At: 60, Seq: 7, CG: 1},
		{Kind: trace.KindDeviceStart, At: 65, Seq: 7, CG: 1},
		{Kind: trace.KindComplete, At: 100, Seq: 7, CG: 1, Aux: 100},
	})
	set := span.Build(tr, fault.Plan{})
	if len(set.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(set.Spans))
	}
	s := set.Spans[0]
	if s.Attempts != 2 || s.Status != "ok" {
		t.Fatalf("attempts=%d status=%q, want 2/ok", s.Attempts, s.Status)
	}
	if s.Total() != 100 {
		t.Fatalf("total %d, want 100", s.Total())
	}
	if s.Throttle != 20 || s.Queue != 0 || s.DevWait != 5 || s.Device != 45 || s.Retry != 30 {
		t.Fatalf("phases throttle=%d queue=%d devwait=%d device=%d retry=%d, want 20/0/5/45/30",
			s.Throttle, s.Queue, s.DevWait, s.Device, s.Retry)
	}
	if sum := s.Throttle + s.Queue + s.DevWait + s.Device + s.Retry; sum != s.Total() {
		t.Fatalf("phases sum to %d, want total %d", sum, s.Total())
	}
}

func TestBuildFinalFailure(t *testing.T) {
	tr := synthetic([]trace.Event{
		{Kind: trace.KindSubmit, At: 0, Seq: 3, CG: 0},
		{Kind: trace.KindIssue, At: 0, Seq: 3, CG: 0},
		{Kind: trace.KindDispatch, At: 0, Seq: 3, CG: 0},
		{Kind: trace.KindDeviceStart, At: 0, Seq: 3, CG: 0},
		{Kind: trace.KindComplete, At: 10, Seq: 3, CG: 0, Aux: 10},
		{Kind: trace.KindTimeout, At: 10, Seq: 3, CG: 0},
		// An incomplete bio: cut off by the capture window.
		{Kind: trace.KindSubmit, At: 5, Seq: 4, CG: 0},
	})
	set := span.Build(tr, fault.Plan{})
	if len(set.Spans) != 1 || set.Incomplete != 1 {
		t.Fatalf("spans=%d incomplete=%d, want 1/1", len(set.Spans), set.Incomplete)
	}
	if set.Spans[0].Status != "timeout" {
		t.Fatalf("status %q, want timeout", set.Spans[0].Status)
	}
}

func TestBuildFaultAttribution(t *testing.T) {
	plan := fault.Plan{Episodes: []fault.Episode{
		{Kind: fault.Slow, At: 50, Dur: 100, Factor: 10},
		{Kind: fault.GCStorm, At: 120, Dur: 30, Rate: 0.5, Stall: 5},
	}}
	tr := synthetic([]trace.Event{
		{Kind: trace.KindSubmit, At: 0, Seq: 1, CG: 0},
		{Kind: trace.KindIssue, At: 0, Seq: 1, CG: 0},
		{Kind: trace.KindDispatch, At: 100, Seq: 1, CG: 0},
		{Kind: trace.KindDeviceStart, At: 110, Seq: 1, CG: 0},
		{Kind: trace.KindComplete, At: 200, Seq: 1, CG: 0, Aux: 200},
	})
	set := span.Build(tr, plan)
	s := set.Spans[0]
	// Device window [100,200): slow episode [50,150) overlaps 50, gcstorm
	// [120,150) overlaps 30 — but the union is still [100,150), so the
	// concurrent stretch counts once.
	if s.Fault != 50 {
		t.Fatalf("fault overlap %d, want 50 (union, no double count)", s.Fault)
	}
	if s.FaultByKind[fault.Slow] != 50 || s.FaultByKind[fault.GCStorm] != 30 {
		t.Fatalf("by-kind slow=%d gcstorm=%d, want 50/30",
			s.FaultByKind[fault.Slow], s.FaultByKind[fault.GCStorm])
	}
	rep := set.Blame()
	if rep.System.FaultFrac <= 0 {
		t.Fatalf("system fault frac %v, want > 0", rep.System.FaultFrac)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBlameFractionsSum(t *testing.T) {
	set := machineSet(t, fault.Plan{})
	rep := set.Blame()
	if rep.Spans == 0 {
		t.Fatal("machine run produced no spans")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := rep.System.ThrottleFrac + rep.System.QueueFrac + rep.System.DevWaitFrac +
		rep.System.DeviceFrac + rep.System.RetryFrac
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("system phase fractions sum to %v, want 1", sum)
	}
	if len(rep.ByCGroup) < 2 {
		t.Fatalf("got %d cgroup scopes, want >= 2", len(rep.ByCGroup))
	}
	for i := 1; i < len(rep.ByCGroup); i++ {
		if rep.ByCGroup[i-1].Path >= rep.ByCGroup[i].Path {
			t.Fatalf("cgroup scopes not sorted: %q >= %q",
				rep.ByCGroup[i-1].Path, rep.ByCGroup[i].Path)
		}
	}
	if out := rep.Format(); out == "" {
		t.Fatal("empty blame table")
	}
}

// machineSet runs the standard contention scenario with tracing on and
// returns its span set.
func machineSet(t *testing.T, plan fault.Plan) *span.Set {
	return machineSetFor(t, plan, 500*sim.Millisecond)
}

func machineSetFor(t *testing.T, plan fault.Plan, dur sim.Time) *span.Set {
	t.Helper()
	spec := device.OlderGenSSD()
	m := exp.MustNewMachine(exp.MachineConfig{
		Device:     exp.DeviceChoice{SSD: &spec},
		Controller: exp.KindIOCost,
		Seed:       1,
		Trace:      true,
		Faults:     plan,
	})
	hi := m.Workload.NewChild("hi", 200)
	lo := m.Workload.NewChild("lo", 100)
	workload.NewSaturator(m.Q, workload.SaturatorConfig{
		CG: hi, Op: bio.Read, Pattern: workload.Random,
		Size: 4096, Depth: 16, Region: 0, Seed: 2,
	}).Start()
	workload.NewSaturator(m.Q, workload.SaturatorConfig{
		CG: lo, Op: bio.Read, Pattern: workload.Random,
		Size: 4096, Depth: 16, Region: 1 << 40, Seed: 3,
	}).Start()
	m.Run(dur)
	tr := m.Trace.Trace()
	return span.Build(tr, plan)
}

// TestStormBlame pins the acceptance criterion: under the storm preset the
// tail of a traced run is attributed to the injected episodes.
func TestStormBlame(t *testing.T) {
	plan := fault.Plan{Episodes: []fault.Episode{
		{Kind: fault.Slow, At: 100 * sim.Millisecond, Dur: 300 * sim.Millisecond, Factor: 10},
		{Kind: fault.Error, At: 100 * sim.Millisecond, Dur: 300 * sim.Millisecond, Rate: 0.01},
	}}
	set := machineSet(t, plan)
	rep := set.Blame()
	if rep.System.FaultFrac <= 0.5 {
		t.Fatalf("storm tail fault fraction %v, want > 0.5", rep.System.FaultFrac)
	}
	if rep.System.FaultByKind["slow"] <= 0 {
		t.Fatalf("no slow-episode attribution: %v", rep.System.FaultByKind)
	}
}

// TestBuildDeterministic pins that two identical runs produce identical
// span sets (the property the Perfetto golden rides on).
func TestBuildDeterministic(t *testing.T) {
	a, b := machineSet(t, fault.Plan{}), machineSet(t, fault.Plan{})
	if len(a.Spans) != len(b.Spans) {
		t.Fatalf("span counts differ: %d vs %d", len(a.Spans), len(b.Spans))
	}
	for i := range a.Spans {
		sa, sb := a.Spans[i], b.Spans[i]
		sa.Segments, sb.Segments = nil, nil
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, sa, sb)
		}
	}
}

// TestPerfettoGolden pins the export byte-for-byte for a fixed seed.
// Regenerate with UPDATE_PERFETTO_GOLDEN=1.
func TestPerfettoGolden(t *testing.T) {
	// A short window keeps the golden file reviewably small while still
	// exercising every event shape (faults, retries, controller events).
	plan := fault.Plan{Episodes: []fault.Episode{
		{Kind: fault.Slow, At: 5 * sim.Millisecond, Dur: 10 * sim.Millisecond, Factor: 8},
	}}
	set := machineSetFor(t, plan, 20*sim.Millisecond)
	var buf bytes.Buffer
	if err := span.WritePerfetto(&buf, set); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := span.WritePerfetto(&again, set); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same set differ")
	}

	path := filepath.Join("testdata", "perfetto_v1.json")
	if os.Getenv("UPDATE_PERFETTO_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_PERFETTO_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto export drifted from golden (got %d bytes, want %d); regenerate with UPDATE_PERFETTO_GOLDEN=1 if intended",
			buf.Len(), len(want))
	}
}
