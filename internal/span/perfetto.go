package span

// Perfetto / Chrome trace_event JSON export. The output loads directly in
// ui.perfetto.dev (or chrome://tracing): one "process" per cgroup with one
// thread lane per phase, plus a controller process carrying the vrate
// counter track, debt/donation instants and injected fault episodes.
//
// The JSON is written by hand, not via encoding/json, so the byte stream is
// fully under our control: field order, number formatting and event order
// are all deterministic functions of the trace, which is what lets CI cmp
// two exports of the same seed. Timestamps are microseconds (the
// trace_event unit) printed as <µs>.<ns%1000 zero-padded> so no precision
// is lost going through the 1000× unit change.

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/iocost-sim/iocost/internal/bio"
	"github.com/iocost-sim/iocost/internal/sim"
	"github.com/iocost-sim/iocost/internal/trace"
)

const (
	pidController = 0
	// Cgroup processes are pid = CG + 2 so the NoCG sentinel (-1) lands on
	// a valid pid of its own.
	pidNoCG = 1

	tidFaults    = 1
	tidDebt      = 2
	tidDonation  = 3
	tidSpan      = 1
	tidPhaseBase = 2 // tid = tidPhaseBase + Phase
)

// pw is a print-to-writer helper that latches the first error.
type pw struct {
	w     io.Writer
	err   error
	first bool
}

func (p *pw) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// event emits one trace_event object, comma-separated from its predecessor.
func (p *pw) event(body string) {
	if p.err != nil {
		return
	}
	sep := ",\n"
	if p.first {
		sep = "\n"
		p.first = false
	}
	_, p.err = io.WriteString(p.w, sep+body)
}

// jsonStr escapes s as a JSON string literal (quotes included).
func jsonStr(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// usec renders a virtual-time instant as trace_event microseconds with the
// sub-microsecond remainder as three decimal digits.
func usec(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	return fmt.Sprintf("%s%d.%03d", neg, int64(t)/1000, int64(t)%1000)
}

func spanPid(cg int32) int32 {
	if cg < 0 {
		return pidNoCG
	}
	return cg + 2
}

var phaseLaneNames = [...]string{
	PhaseThrottle: "throttle",
	PhaseQueue:    "queue",
	PhaseDevWait:  "devwait",
	PhaseDevice:   "device",
	PhaseRetry:    "retry",
}

// WritePerfetto writes the span set as Chrome trace_event JSON. Output is
// byte-identical for identical traces.
func WritePerfetto(w io.Writer, set *Set) error {
	p := &pw{w: w, first: true}
	p.printf(`{"displayTimeUnit":"ns","traceEvents":[`)

	meta := func(pid int32, tid int, kind, name string) {
		tidPart := ""
		if kind == "thread_name" {
			tidPart = fmt.Sprintf(`"tid":%d,`, tid)
		}
		p.event(fmt.Sprintf(`{"ph":"M","pid":%d,%s"name":%q,"args":{"name":%s}}`,
			pid, tidPart, kind, jsonStr(name)))
	}

	// Process/thread naming, fixed order: controller first, then cgroups in
	// table order, then the no-cgroup bucket if any span needs it.
	meta(pidController, 0, "process_name", "iocost controller")
	meta(pidController, tidFaults, "thread_name", "fault episodes")
	meta(pidController, tidDebt, "thread_name", "debt")
	meta(pidController, tidDonation, "thread_name", "donation")
	for id, path := range set.Trace.CGroups {
		pid := spanPid(int32(id))
		meta(pid, 0, "process_name", path)
		meta(pid, tidSpan, "thread_name", "bio")
		for ph, name := range phaseLaneNames {
			meta(pid, tidPhaseBase+ph, "thread_name", name)
		}
	}
	needNoCG := false
	for i := range set.Spans {
		if set.Spans[i].CG < 0 {
			needNoCG = true
			break
		}
	}
	if needNoCG {
		meta(pidNoCG, 0, "process_name", "<none>")
		meta(pidNoCG, tidSpan, "thread_name", "bio")
		for ph, name := range phaseLaneNames {
			meta(pidNoCG, tidPhaseBase+ph, "thread_name", name)
		}
	}

	// Injected fault episodes as complete slices on the controller track.
	for _, ep := range set.Plan.Episodes {
		p.event(fmt.Sprintf(
			`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"kind":%q}}`,
			pidController, tidFaults, usec(ep.At), usec(ep.Dur),
			jsonStr("fault:"+ep.Kind.String()), ep.Kind.String()))
	}

	// Controller event streams in trace order: the vrate counter track and
	// debt/donation instants.
	for i := range set.Trace.Events {
		ev := &set.Trace.Events[i]
		switch ev.Kind {
		case trace.KindVrate, trace.KindPeriod:
			v := strconv.FormatFloat(float64(ev.Aux)/1e6, 'g', -1, 64)
			p.event(fmt.Sprintf(
				`{"ph":"C","pid":%d,"ts":%s,"name":"vrate","args":{"vrate":%s}}`,
				pidController, usec(ev.At), v))
		case trace.KindDebt:
			p.event(fmt.Sprintf(
				`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":"debt","args":{"cgroup":%s}}`,
				pidController, tidDebt, usec(ev.At), jsonStr(set.Trace.CGPath(ev.CG))))
		case trace.KindDonation:
			p.event(fmt.Sprintf(
				`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":"donation","args":{}}`,
				pidController, tidDonation, usec(ev.At)))
		}
	}

	// Bio spans: one whole-life slice on the bio lane plus one slice per
	// phase segment, in span (first-submit) order.
	for i := range set.Spans {
		s := &set.Spans[i]
		pid := spanPid(s.CG)
		p.event(fmt.Sprintf(
			`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"seq":%d,"off":%d,"size":%d,"status":%q,"attempts":%d,"vrate_at_submit":%s,"debt":%d,"donations":%d}}`,
			pid, tidSpan, usec(s.Submit), usec(s.Total()),
			jsonStr(bio.Op(s.Op).String()), s.Seq, s.Off, s.Size, s.Status,
			s.Attempts, strconv.FormatFloat(s.VrateAtSubmit, 'g', -1, 64),
			s.Debt, s.Donations))
		for _, seg := range s.Segments {
			p.event(fmt.Sprintf(
				`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"args":{"seq":%d,"attempt":%d}}`,
				pid, tidPhaseBase+int(seg.Phase), usec(seg.Start),
				usec(seg.End-seg.Start), seg.Phase.String(), s.Seq, seg.Attempt))
		}
	}

	p.printf("\n]}\n")
	return p.err
}
